"""The network interface proper: queues, operations, interrupt lines.

This class ties together the register file, the UAC, the atomicity
timer, the GID check and the hardware input queue, and implements the
Table 1 operations with their exact trap conditions. Interrupt delivery
is *level-triggered with an in-service latch*: a line raises once when
its condition becomes true, and again only after the service routine
completes with the condition still true — which is how the kernel's
drain loops avoid interrupt storms while never losing a wakeup.

Interrupt conditions (evaluated in :meth:`_update`):

* **mismatch-available** (kernel): a message is at the head of the input
  queue and either *divert-mode* is set or its GID differs from
  *current-gid*.
* **message-available** (user): head message matches *current-gid*,
  divert-mode clear. Delivered as a user upcall only when
  *interrupt-disable* is clear and the processor is at user level;
  otherwise the flag remains readable for polling and the condition is
  re-evaluated on ``endatom``/kernel exit.
* **atomicity-timeout** (kernel): the timer expired; the timer runs
  while the user holds *interrupt-disable* with a matching message
  pending (or *timer-force*), and ``dispose`` restarts it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from repro.sim.engine import Engine
from repro.network.fabric import NetworkFabric
from repro.network.message import KERNEL_GID, Message
from repro.ni.delivery import make_discipline
from repro.ni.registers import RegisterFile
from repro.ni.timer import AtomicityTimer
from repro.ni.traps import Trap, TrapSignal
from repro.ni.uac import UserAtomicityControl


@dataclass
class NiConfig:
    """Hardware parameters of one network interface."""

    #: Hardware input queue depth, in messages. The paper stresses the
    #: hardware cost is "a small, single message queue"; the default of
    #: 2 models the arriving-message landing register plus the window.
    #: Under ``delivery="zerocopy"`` the receive ring *is* the input
    #: structure (capacity = ring words); under ``delivery="damq"`` the
    #: shared pool replaces the fixed queue (capacity = pool slots).
    input_queue_capacity: int = 2
    #: Atomicity-timer preset, in cycles. "The exact timeout value is a
    #: free parameter that may be changed without affecting correctness."
    atomicity_timeout: int = 5000
    #: Which delivery discipline governs the input structure (see
    #: :mod:`repro.ni.delivery` and docs/DELIVERY.md).
    delivery: str = "twocase"
    #: Zero-copy receive-ring capacity, in words.
    zerocopy_ring_words: int = 512
    #: Page size used for the pinned-footprint accounting.
    page_size_words: int = 1024


@dataclass
class NiStats:
    """Per-node interface counters."""

    delivered_to_user: int = 0     # messages disposed on the fast path
    delivered_to_kernel: int = 0   # messages disposed by the kernel
    message_available_upcalls: int = 0
    mismatch_interrupts: int = 0
    atomicity_timeouts: int = 0
    max_input_queue: int = 0
    input_stalls: int = 0          # fault-injected transient stalls
    forced_timeouts: int = 0       # fault-injected timer expiries
    # Two-case accounting: deliveries accepted on the quiescent fast
    # path (empty queue, matching GID, no trap re-evaluation) vs the
    # general path through the full _update machinery.
    fast_deliveries: int = 0
    general_deliveries: int = 0


class NetworkInterface:
    """One node's FUGU network interface."""

    def __init__(self, engine: Engine, node_id: int, fabric: NetworkFabric,
                 config: Optional[NiConfig] = None) -> None:
        self.engine = engine
        self.node_id = node_id
        self.fabric = fabric
        self.config = config or NiConfig()
        self.registers = RegisterFile()
        self.uac = UserAtomicityControl()
        self.timer = AtomicityTimer(
            engine, self.config.atomicity_timeout, self._timeout_fired
        )
        self.stats = NiStats()
        self._input: Deque[Message] = deque()
        #: Delivery discipline governing the input structure. The default
        #: two-case discipline is a pure no-op; the alternatives shape
        #: admission and disable the fast path (see repro.ni.delivery).
        self.discipline = make_discipline(self.config, self)

        # Delivery hooks, wired by the kernel and the UDM runtime.
        self.deliver_message_available: Optional[Callable[[], None]] = None
        self.deliver_mismatch_available: Optional[Callable[[], None]] = None
        self.deliver_atomicity_timeout: Optional[Callable[[], None]] = None
        #: Predicate: may a user-level upcall be raised right now?
        self.user_level_ready: Callable[[], bool] = lambda: True

        # In-service latches (see module docstring).
        self._mismatch_in_service = False
        self._upcall_in_service = False

        self._obs = None
        self._fault_injector = None
        self._stalled_until = -1

        # Two-case fast path. `_fast_base` holds the per-run quiescence
        # terms (no observatory, no injector, fast path not disabled by
        # REPRO_NO_FASTPATH); `_fast_ok` additionally folds in the
        # mutable trap state and is recomputed at every `_update` — the
        # single funnel through which GID, divert-mode and UAC changes
        # flow — so `network_deliver` can trust it without re-deriving
        # the trap conditions per message.
        self._fast_base = (
            engine.fastpath
            and self.config.input_queue_capacity >= 1
            and self.discipline.allows_fastpath
        )
        self._fast_ok = False

        fabric.attach(node_id, self)

    @property
    def obs(self):
        """Optional observatory (set by Machine.enable_observability);
        same None-check hot-path contract as the tracer."""
        return self._obs

    @obs.setter
    def obs(self, value) -> None:
        self._obs = value
        self._refresh_fast_base()

    @property
    def fault_injector(self):
        """Optional fault injector (set by the machine). While a stall
        is active the interface refuses network deliveries, exactly
        the full-input-queue condition the atomicity timer bounds."""
        return self._fault_injector

    @fault_injector.setter
    def fault_injector(self, value) -> None:
        self._fault_injector = value
        self._refresh_fast_base()

    def _refresh_fast_base(self) -> None:
        self._fast_base = (
            self.engine.fastpath
            and self.config.input_queue_capacity >= 1
            and self.discipline.allows_fastpath
            and self._obs is None
            and self._fault_injector is None
        )
        if not self._fast_base:
            self._fast_ok = False

    # ------------------------------------------------------------------
    # Status flags (readable registers)
    # ------------------------------------------------------------------
    @property
    def head(self) -> Optional[Message]:
        return self._input[0] if self._input else None

    @property
    def message_available(self) -> bool:
        """The user-visible *message-available* flag."""
        head = self.head
        return (
            head is not None
            and not head.is_kernel
            and not self.registers.divert_mode
            and head.gid == self.registers.current_gid
        )

    @property
    def mismatch_pending(self) -> bool:
        """Head message needs kernel attention: divert-mode, a GID
        mismatch, or an operating-system (kernel-GID) message."""
        head = self.head
        return head is not None and (
            self.registers.divert_mode
            or head.is_kernel
            or head.gid != self.registers.current_gid
        )

    @property
    def input_queue_length(self) -> int:
        return len(self._input)

    def space_available(self, dst: int) -> bool:
        """The *space-available* register for a described destination."""
        return self.fabric.has_credit(dst)

    # ------------------------------------------------------------------
    # Fabric-facing side
    # ------------------------------------------------------------------
    def network_deliver(self, message: Message) -> bool:
        """Fabric offers a message; accept if the input queue has room.

        Fast case: the node is quiescent (``_fast_ok``: no injector, no
        observatory, divert-mode clear, UAC disarmed, upcall hook
        wired, a user GID installed), the queue is empty and the
        message's GID matches — then the trap conditions need no
        re-evaluation: *mismatch-available* is provably false and
        *message-available* provably true, so the message is accepted
        and (if the line is armed) upcalled directly. Any disturbing
        condition falls through to the general path below.
        """
        if (self._fast_ok and not self._input
                and message.gid == self.registers.current_gid):
            self._input.append(message)
            stats = self.stats
            stats.fast_deliveries += 1
            if stats.max_input_queue < 1:
                stats.max_input_queue = 1
            # The atomicity timer needs no update: _fast_ok implies
            # interrupt-disable and timer-force are both clear, so the
            # timer condition was false at the last _update and stays
            # false — the timer is provably disarmed.
            if not self._upcall_in_service and self.user_level_ready():
                self._upcall_in_service = True
                stats.message_available_upcalls += 1
                self.deliver_message_available()
            return True
        if self._stalled_until > self.engine.now:
            return False
        discipline = self.discipline
        if discipline.shapes_admission:
            # Alternative disciplines own the admission decision: the
            # zerocopy ring accounts in words (and diverts to buffered
            # mode instead of refusing), the DAMQ enforces per-source
            # share limits and triggers occupancy-pressure eviction.
            if not discipline.admit(self, message):
                return False
        elif len(self._input) >= self.config.input_queue_capacity:
            return False
        if self._fault_injector is not None:
            cycles = self._fault_injector.ni_stall_cycles(self.node_id)
            if cycles > 0:
                # Transient input stall: refuse deliveries until the
                # stall clears, then drain whatever blocked behind it.
                self._stalled_until = self.engine.now + cycles
                self.stats.input_stalls += 1
                self.engine.call_after(cycles, self._stall_over)
                return False
        self._input.append(message)
        if discipline.shapes_admission:
            discipline.on_accept(message)
        self.stats.general_deliveries += 1
        if len(self._input) > self.stats.max_input_queue:
            self.stats.max_input_queue = len(self._input)
        if self._obs is not None:
            self._obs.h_input_queue.observe(len(self._input))
        self._update()
        return True

    def _stall_over(self) -> None:
        self.fabric.input_space_freed(self.node_id)
        self._update()

    def force_timeout(self) -> None:
        """Fault hook: fire the atomicity-timeout path unconditionally,
        as if the hardware counter had just reached zero."""
        self.stats.forced_timeouts += 1
        self._timeout_fired()

    # ------------------------------------------------------------------
    # Table 1 operations
    # ------------------------------------------------------------------
    def describe(self, dst: int, handler, payload=(),
                 kernel_bit: bool = False) -> None:
        """Write the output descriptor (the first phase of inject)."""
        self.registers.output.describe(dst, handler, tuple(payload),
                                       kernel_bit)

    def launch(self, privileged: bool = False) -> Optional[Message]:
        """Commit the described message to the network (Table 1).

        Returns the in-flight message, or None when the descriptor was
        empty (launch is then a no-op, per the Table 1 guard).
        """
        output = self.registers.output
        if output.kernel_bit and not privileged:
            raise TrapSignal(Trap.PROTECTION_VIOLATION,
                             {"reason": "user launch with kernel message"})
        if output.length == 0:
            return None
        gid = KERNEL_GID if output.kernel_bit else self.registers.current_gid
        if privileged and output.kernel_bit:
            gid = KERNEL_GID
        message = Message(
            dst=output.dst,
            handler=output.handler,
            payload=output.payload,
            src=self.node_id,
            gid=gid,
        )
        output.clear()
        self.fabric.send(message)
        return message

    def launch_bulk(self, dst: int, handler, payload,
                    privileged: bool = False) -> Message:
        """Commit a bulk (user-level DMA) transfer to the network.

        Bulk transfers bypass the 16-word output buffer: the DMA engine
        reads the data from memory and streams it into the network. The
        GID stamp and protection model are identical to ``launch``.
        """
        message = Message(
            dst=dst,
            handler=handler,
            payload=tuple(payload),
            src=self.node_id,
            gid=KERNEL_GID if privileged else self.registers.current_gid,
            bulk=True,
        )
        message.validate()
        self.fabric.send(message)
        return message

    def dispose(self, privileged: bool = False) -> Message:
        """Free the head message (Table 1 trap conditions for user mode).

        The privileged form is the kernel's path for unloading the queue
        in divert mode; it bypasses the dispose-extend trap but still
        requires a message to exist.
        """
        if not privileged:
            if self.registers.divert_mode:
                raise TrapSignal(Trap.DISPOSE_EXTEND)
            if not self.message_available:
                raise TrapSignal(Trap.BAD_DISPOSE)
        elif not self._input:
            raise TrapSignal(Trap.BAD_DISPOSE,
                             {"reason": "kernel dispose on empty queue"})
        message = self._input.popleft()
        if self.discipline.shapes_admission:
            self.discipline.on_dispose(message)
        if privileged:
            self.stats.delivered_to_kernel += 1
        else:
            self.stats.delivered_to_user += 1
        # Forward progress: dispose presets (briefly disables) the timer.
        self.timer.restart()
        self.uac.dispose_pending = False
        # A slot opened: let blocked network traffic in, then re-evaluate.
        self.fabric.input_space_freed(self.node_id)
        self._update()
        return message

    def beginatom(self, mask: int) -> None:
        """UAC := UAC | mask."""
        self.uac.set_user_bits(mask)
        self._update()

    def endatom(self, mask: int) -> None:
        """Clear user UAC bits, with the Table 1 trap checks."""
        if self.uac.dispose_pending:
            raise TrapSignal(Trap.DISPOSE_FAILURE)
        if self.uac.atomicity_extend:
            raise TrapSignal(Trap.ATOMICITY_EXTEND)
        self.uac.clear_user_bits(mask)
        self._update()

    def peek(self) -> Optional[Message]:
        """Examine the next message without dequeuing it (user view)."""
        if not self.message_available:
            return None
        return self.head

    # ------------------------------------------------------------------
    # Kernel register writes
    # ------------------------------------------------------------------
    def set_divert_mode(self, value: bool, privileged: bool = True) -> None:
        self.registers.write_divert_mode(value, privileged)
        self._update()

    def set_current_gid(self, gid: int, privileged: bool = True) -> None:
        self.registers.write_current_gid(gid, privileged)
        self._update()

    def set_kernel_uac(self, dispose_pending: Optional[bool] = None,
                       atomicity_extend: Optional[bool] = None) -> None:
        """Kernel writes of the privileged UAC flags."""
        if dispose_pending is not None:
            self.uac.dispose_pending = dispose_pending
        if atomicity_extend is not None:
            self.uac.atomicity_extend = atomicity_extend

    # ------------------------------------------------------------------
    # Interrupt machinery
    # ------------------------------------------------------------------
    def reevaluate(self) -> None:
        """Re-check interrupt conditions (kernel-exit / endatom hook)."""
        self._update()

    def mismatch_serviced(self) -> None:
        """Kernel mismatch handler completed; re-arm the line."""
        self._mismatch_in_service = False
        self._update()

    def upcall_complete(self) -> None:
        """User message-available upcall completed; re-arm the line."""
        self._upcall_in_service = False
        self._update()

    def _update(self) -> None:
        # Recompute the fast-path gate: every mutation of the GID,
        # divert-mode, UAC bits or delivery hooks funnels through here
        # before the event loop runs the next delivery.
        uac = self.uac
        registers = self.registers
        self._fast_ok = (
            self._fast_base
            and not uac.interrupt_disable
            and not uac.timer_force
            and not registers.divert_mode
            and registers.current_gid != KERNEL_GID
            and self.deliver_message_available is not None
        )
        self.timer.update(self._timer_condition())
        if self.mismatch_pending:
            if not self._mismatch_in_service and \
                    self.deliver_mismatch_available is not None:
                self._mismatch_in_service = True
                self.stats.mismatch_interrupts += 1
                self.deliver_mismatch_available()
            return
        if (
            self.message_available
            and not self.uac.interrupt_disable
            and not self._upcall_in_service
            and self.deliver_message_available is not None
            and self.user_level_ready()
        ):
            self._upcall_in_service = True
            self.stats.message_available_upcalls += 1
            self.deliver_message_available()

    def _timer_condition(self) -> bool:
        """Table 3: interrupt-disable with a message pending, or
        timer-force, enables the atomicity timer."""
        if self.uac.timer_force:
            return True
        return self.uac.interrupt_disable and self.message_available

    def _timeout_fired(self) -> None:
        self.stats.atomicity_timeouts += 1
        if self.deliver_atomicity_timeout is not None:
            self.deliver_atomicity_timeout()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NI node={self.node_id} q={len(self._input)} "
            f"gid={self.registers.current_gid} "
            f"divert={self.registers.divert_mode}>"
        )
