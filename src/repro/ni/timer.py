"""The dedicated atomicity timer (Section 4.1, "Revocable Interrupt
Disable").

Hardware behaviour being modelled:

* a decrementing counter and a preset value (*atomicity-timeout*);
* while **disabled**, the counter sits at the preset value;
* while **enabled**, it decrements every cycle and flags an
  *atomicity-timeout* interrupt on reaching zero;
* the enable condition is computed by the NI from the UAC flags
  (interrupt-disable with a message pending, or timer-force);
* ``dispose`` "briefly disables (i.e. presets)" the timer — forward
  progress on the message queue restarts the countdown.

Because the counter is preset whenever disabled, enabling always starts
a full countdown; the event-driven model is therefore a cancellable
scheduled timeout rather than a per-cycle decrement.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import Engine


class AtomicityTimer:
    """Restartable countdown raising ``on_timeout`` after ``preset``."""

    def __init__(self, engine: Engine, preset: int,
                 on_timeout: Callable[[], None]) -> None:
        if preset <= 0:
            raise ValueError("atomicity timeout preset must be positive")
        self.engine = engine
        self.preset = preset
        self.on_timeout = on_timeout
        self._entry = None
        self.timeouts = 0

    @property
    def enabled(self) -> bool:
        return self._entry is not None

    @property
    def deadline(self) -> Optional[int]:
        return self._entry.time if self._entry is not None else None

    def set_preset(self, preset: int) -> None:
        """Kernel write of the *atomicity-timeout* register.

        Takes effect at the next enable (the running countdown, if any,
        is not retimed — matches a preset-on-disable counter).
        """
        if preset <= 0:
            raise ValueError("atomicity timeout preset must be positive")
        self.preset = preset

    def enable(self) -> None:
        """Start the countdown if not already running."""
        if self._entry is None:
            self._entry = self.engine.call_after(self.preset, self._fire)

    def disable(self) -> None:
        """Stop the countdown and preset the counter."""
        if self._entry is not None:
            self._entry.cancel()
            self._entry = None

    def restart(self) -> None:
        """Dispose semantics: preset, then resume counting if enabled."""
        if self._entry is not None:
            self._entry.cancel()
            self._entry = self.engine.call_after(self.preset, self._fire)

    def update(self, should_enable: bool) -> None:
        """Drive the enable condition from NI state."""
        if should_enable:
            self.enable()
        else:
            self.disable()

    def _fire(self) -> None:
        self._entry = None
        self.timeouts += 1
        self.on_timeout()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"deadline={self.deadline}" if self.enabled else "disabled"
        return f"<AtomicityTimer preset={self.preset} {state}>"
