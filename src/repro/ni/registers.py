"""The memory-mapped register file of the FUGU NI (Figure 3).

User-level registers:

* the **output message buffer** (up to 16 words) plus the
  *descriptor-length* register — the describe half of the two-phase
  inject;
* the **input message window** exposing the head of the hardware input
  queue (read via the NI, swapped to memory in buffered mode);
* *message-available* and *space-available* status (computed by the NI);
* the user half of the UAC register.

Kernel-level registers (user access traps with protection-violation):

* *current-gid* — the GID of the scheduled process group, stamped into
  outgoing messages and checked against incoming ones;
* *divert-mode* — when set, every incoming message raises a kernel
  mismatch-available interrupt and user ``dispose`` traps
  (dispose-extend): the hardware half of buffered mode;
* *atomicity-timeout* — the timer preset (held in the timer model).
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.network.message import KERNEL_GID, MAX_MESSAGE_WORDS
from repro.ni.traps import Trap, TrapSignal


class OutputDescriptor:
    """The send-side descriptor: destination, handler, payload words."""

    __slots__ = ("dst", "handler", "payload", "kernel_bit")

    def __init__(self) -> None:
        self.clear()

    def clear(self) -> None:
        self.dst: int = -1
        self.handler: Any = None
        self.payload: Tuple[Any, ...] = ()
        self.kernel_bit: bool = False

    @property
    def length(self) -> int:
        """The descriptor-length register (words described so far)."""
        if self.dst < 0:
            return 0
        return 2 + len(self.payload)

    def describe(self, dst: int, handler: Any, payload: Tuple[Any, ...],
                 kernel_bit: bool = False) -> None:
        if 2 + len(payload) > MAX_MESSAGE_WORDS:
            raise ValueError(
                f"message of {2 + len(payload)} words exceeds the "
                f"{MAX_MESSAGE_WORDS}-word output buffer; use DMA"
            )
        self.dst = dst
        self.handler = handler
        self.payload = tuple(payload)
        self.kernel_bit = kernel_bit


class RegisterFile:
    """Architectural register state not owned by a dedicated model."""

    __slots__ = ("output", "current_gid", "divert_mode")

    def __init__(self) -> None:
        self.output = OutputDescriptor()
        self.current_gid: int = KERNEL_GID
        self.divert_mode: bool = False

    # ------------------------------------------------------------------
    # Kernel register protection
    # ------------------------------------------------------------------
    def write_current_gid(self, gid: int, privileged: bool) -> None:
        self._check_privilege(privileged, "current-gid")
        self.current_gid = gid

    def write_divert_mode(self, value: bool, privileged: bool) -> None:
        self._check_privilege(privileged, "divert-mode")
        self.divert_mode = bool(value)

    @staticmethod
    def _check_privilege(privileged: bool, register: str) -> None:
        if not privileged:
            raise TrapSignal(Trap.PROTECTION_VIOLATION,
                             {"register": register})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Registers gid={self.current_gid} divert={self.divert_mode} "
            f"desc_len={self.output.length}>"
        )
