"""Pluggable NI delivery disciplines (the ``delivery=`` config axis).

The paper argues two-case delivery against two concrete design points
from the related literature: memory-protection-based zero-copy receive
rings (Power) and DAMQ-style dynamically partitioned shared input
queues. This module makes all three first-class, config-selectable
disciplines behind one small interface, so the same machine, fault
planner, invariant checker and golden-artifact pipeline exercise each
of them head to head (see docs/DELIVERY.md).

* ``twocase`` — the paper's system and the default. The discipline is
  a pure no-op: admission is the fixed hardware-queue bound already in
  :meth:`~repro.ni.interface.NetworkInterface.network_deliver`, and the
  quiescent fast path stays eligible. Behaviour is byte-identical to a
  machine built before this axis existed.
* ``zerocopy`` — arriving messages for the *running* process pin their
  words directly in a per-NI receive ring mapped into user space; the
  hardware queue is the ring, so its capacity (in words) is the real
  admission bound. When the ring cannot hold a matching message the
  delivery takes a protection fault and the kernel falls back to
  buffered delivery (``TransitionReason.ZEROCOPY_FAULT``); every
  kernel-side drain models the fault trap
  (:attr:`~repro.core.costs.KernelCosts.zerocopy_fault_trap`). The
  discipline tracks the pinned footprint, which must return to zero
  once the ring drains.
* ``damq`` — the fixed per-NI queue becomes a dynamically partitioned
  shared pool with per-source linked lists. Each source's share shrinks
  as more sources contend (one slot is reserved per other active
  source); a source at its share is refused (the fabric holds the
  message and retries on ``input_space_freed``). Under full-pool
  occupancy pressure the discipline evicts the heaviest source's
  traffic to the software buffer (``TransitionReason.QUEUE_PRESSURE``).

Disciplines never duplicate or drop messages: a refusal leaves the
message in the fabric's blocked backlog (checker-resident) and a
zero-copy fault *accepts* the message onto the buffered path, so the
conservation, FIFO and mode-legality invariants hold for every
discipline — which is exactly what ``tests/property/test_prop_delivery``
proves.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, Optional

from repro.core.two_case import DeliveryMode, TransitionReason
from repro.network.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.glaze.kernel import NodeKernel
    from repro.ni.interface import NetworkInterface, NiConfig

#: The closed set of delivery disciplines.
DELIVERY_KINDS = ("twocase", "zerocopy", "damq")


@dataclass
class DeliveryStats:
    """Per-NI discipline counters (zero for fields a discipline never
    touches; the obs registry sums them across nodes)."""

    # Zero-copy
    zerocopy_accepts: int = 0    # messages pinned directly in the ring
    fault_traps: int = 0         # protection-fault traps taken
    fallbacks: int = 0           # ring overflows -> buffered fallback
    pinned_words: int = 0        # live pinned words (0 after drain)
    pinned_pages_peak: int = 0   # high-water pinned footprint, pages
    # DAMQ
    damq_admits: int = 0         # messages admitted to the shared pool
    damq_evictions: int = 0      # occupancy-pressure evictions
    damq_share_refusals: int = 0  # refusals at the per-source share
    damq_peak_occupancy: int = 0  # high-water shared-pool occupancy


class DeliveryDiscipline:
    """Interface every delivery discipline implements.

    The NI consults the discipline at three points of the general
    delivery path — admission (:meth:`admit`), acceptance
    (:meth:`on_accept`) and disposal (:meth:`on_dispose`) — and folds
    :attr:`allows_fastpath` into its quiescent-fast-path gate. The
    kernel binds itself in (:meth:`bind`) so a discipline can trigger
    buffered-mode transitions through the one legal funnel,
    :meth:`~repro.glaze.kernel.NodeKernel.enter_buffered_mode`.
    """

    name = "twocase"
    #: May the NI's quiescent fast path engage? Only the two-case
    #: discipline preserves its provably-no-trap reasoning.
    allows_fastpath = True
    #: Does :meth:`admit` replace the fixed hardware-queue bound?
    shapes_admission = False

    def __init__(self, config: "NiConfig", ni: "NetworkInterface") -> None:
        self.config = config
        self.ni = ni
        self.kernel: Optional["NodeKernel"] = None
        self.stats = DeliveryStats()

    def bind(self, kernel: "NodeKernel") -> None:
        """Wire the node's kernel (called from ``NodeKernel.__init__``)."""
        self.kernel = kernel

    def admit(self, ni: "NetworkInterface", message: Message) -> bool:
        """May ``message`` enter the input structure right now?

        Only consulted when :attr:`shapes_admission` is true. Returning
        False leaves the message blocked in the fabric; it is retried on
        ``input_space_freed``. Implementations may trigger side effects
        (fault fallback, pressure eviction) but must never drop or
        duplicate the message.
        """
        raise NotImplementedError

    def on_accept(self, message: Message) -> None:
        """``message`` was appended to the NI input structure."""

    def on_dispose(self, message: Message) -> None:
        """``message`` left the NI input structure (user or kernel)."""

    def kernel_drain_cost(self, costs) -> int:
        """Extra cycles one kernel mismatch drain pays under this
        discipline (0 keeps the default path byte-identical — the
        kernel skips the yield entirely)."""
        return 0


class TwoCaseDiscipline(DeliveryDiscipline):
    """The paper's system: a no-op discipline, byte-identical default."""

    name = "twocase"


class ZeroCopyDiscipline(DeliveryDiscipline):
    """Pinned receive ring with protection-fault fallback."""

    name = "zerocopy"
    allows_fastpath = False
    shapes_admission = True

    def __init__(self, config: "NiConfig", ni: "NetworkInterface") -> None:
        super().__init__(config, ni)
        self.ring_words = config.zerocopy_ring_words
        self.page_size_words = config.page_size_words
        #: msg_id -> words pinned for it in the ring.
        self._pinned: Dict[int, int] = {}

    # -- ring accounting ------------------------------------------------
    @property
    def pinned_words(self) -> int:
        return self.stats.pinned_words

    @property
    def pinned_pages(self) -> int:
        words = self.stats.pinned_words
        return -(-words // self.page_size_words) if words else 0

    def _matches_user(self, ni: "NetworkInterface", message: Message) -> bool:
        """Would this message be consumed at user level from the ring?"""
        return (
            not message.is_kernel
            and not ni.registers.divert_mode
            and message.gid == ni.registers.current_gid
        )

    def admit(self, ni: "NetworkInterface", message: Message) -> bool:
        if not self._matches_user(ni, message):
            # Mismatching (or diverted, or OS) traffic never touches the
            # user ring; the kernel drains it through the buffered path.
            return True
        if (self.stats.pinned_words + message.length_words
                <= self.ring_words):
            return True
        # Ring full: the write past the pinned region protection-faults
        # and the kernel falls back to buffered delivery for this
        # process. The message itself is *accepted* — with divert-mode
        # now set it arrives as kernel-drained buffered traffic, so
        # nothing is lost and the ring is no longer on its path.
        self.stats.fallbacks += 1
        kernel = self.kernel
        if kernel is not None:
            state = kernel._target_state(message.gid)
            if state is not None and state.mode is not DeliveryMode.BUFFERED:
                kernel.enter_buffered_mode(
                    state, TransitionReason.ZEROCOPY_FAULT)
        return True

    def on_accept(self, message: Message) -> None:
        ni = self.ni
        if not self._matches_user(ni, message):
            return
        stats = self.stats
        stats.zerocopy_accepts += 1
        self._pinned[message.msg_id] = message.length_words
        stats.pinned_words += message.length_words
        pages = self.pinned_pages
        if pages > stats.pinned_pages_peak:
            stats.pinned_pages_peak = pages

    def on_dispose(self, message: Message) -> None:
        words = self._pinned.pop(message.msg_id, None)
        if words is not None:
            self.stats.pinned_words -= words

    def kernel_drain_cost(self, costs) -> int:
        """Every kernel drain exists because a delivery faulted off the
        ring: charge the protection-fault trap and count it."""
        self.stats.fault_traps += 1
        return costs.kernel.zerocopy_fault_trap


class DamqDiscipline(DeliveryDiscipline):
    """Dynamically partitioned shared input queue (DAMQ-style)."""

    name = "damq"
    allows_fastpath = False
    shapes_admission = True

    def __init__(self, config: "NiConfig", ni: "NetworkInterface") -> None:
        super().__init__(config, ni)
        self.capacity = config.input_queue_capacity
        #: Per-source occupancy of the shared pool.
        self.occupancy: Dict[int, int] = {}
        #: Per-source linked lists threading the shared pool.
        self._per_source: Dict[int, Deque[Message]] = {}

    # -- dynamic partitioning -------------------------------------------
    def share_limit(self, src: int) -> int:
        """This source's current share of the pool: the whole pool
        minus one reserved slot per *other* active source."""
        active = len(self.occupancy)
        if src not in self.occupancy:
            active += 1
        return max(1, self.capacity - (active - 1))

    def choose_victim(self) -> Optional[int]:
        """Eviction policy: the source with the largest occupancy
        (lowest source id on ties). Exposed for the unit tests."""
        if not self.occupancy:
            return None
        return min(self.occupancy,
                   key=lambda src: (-self.occupancy[src], src))

    def admit(self, ni: "NetworkInterface", message: Message) -> bool:
        if self.occupancy.get(message.src, 0) >= \
                self.share_limit(message.src):
            # The share bound applies even when the pool still has free
            # slots (and when this source filled it alone): a source at
            # its dynamic share is back-pressured, not allowed to evict
            # everyone else. The fabric retries on ``input_space_freed``.
            self.stats.damq_share_refusals += 1
            return False
        if len(ni._input) >= self.capacity:
            # Occupancy pressure on the full pool: evict the heaviest
            # source's traffic to the software buffer, then refuse (the
            # fabric retries once the kernel drains a slot).
            self._evict_under_pressure()
            return False
        return True

    def _evict_under_pressure(self) -> None:
        victim = self.choose_victim()
        if victim is None:
            return
        queue = self._per_source.get(victim)
        if not queue:
            return
        head = queue[0]
        kernel = self.kernel
        if kernel is None or head.is_kernel:
            return
        state = kernel._target_state(head.gid)
        if state is None or state.mode is DeliveryMode.BUFFERED:
            # Already draining through the buffered path (or the gid is
            # gone); the pending mismatch service will free slots.
            return
        kernel.enter_buffered_mode(state, TransitionReason.QUEUE_PRESSURE)
        self.stats.damq_evictions += 1

    def on_accept(self, message: Message) -> None:
        stats = self.stats
        stats.damq_admits += 1
        src = message.src
        self.occupancy[src] = self.occupancy.get(src, 0) + 1
        self._per_source.setdefault(src, deque()).append(message)
        depth = len(self.ni._input)
        if depth > stats.damq_peak_occupancy:
            stats.damq_peak_occupancy = depth

    def on_dispose(self, message: Message) -> None:
        src = message.src
        count = self.occupancy.get(src)
        if count is None:
            return
        if count <= 1:
            del self.occupancy[src]
        else:
            self.occupancy[src] = count - 1
        queue = self._per_source.get(src)
        if queue:
            # Global FIFO drain implies per-source FIFO, so the head of
            # this source's list is the disposed message.
            if queue[0].msg_id == message.msg_id:
                queue.popleft()
            else:  # pragma: no cover - defensive
                try:
                    queue.remove(message)
                except ValueError:
                    pass
            if not queue:
                del self._per_source[src]

    def kernel_drain_cost(self, costs) -> int:
        """Draining a shared pool re-links the per-source lists."""
        return costs.kernel.damq_evict_scan


_DISCIPLINES = {
    "twocase": TwoCaseDiscipline,
    "zerocopy": ZeroCopyDiscipline,
    "damq": DamqDiscipline,
}


def make_discipline(config: "NiConfig",
                    ni: "NetworkInterface") -> DeliveryDiscipline:
    """Build the discipline ``config.delivery`` names."""
    try:
        cls = _DISCIPLINES[config.delivery]
    except KeyError:
        raise ValueError(
            f"unknown delivery discipline {config.delivery!r}; "
            f"expected one of {DELIVERY_KINDS}"
        ) from None
    return cls(config, ni)


__all__ = [
    "DELIVERY_KINDS", "DamqDiscipline", "DeliveryDiscipline",
    "DeliveryStats", "TwoCaseDiscipline", "ZeroCopyDiscipline",
    "make_discipline",
]
