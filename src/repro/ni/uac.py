"""The User Atomicity Control (UAC) register (Table 3).

Four flags. Two are user-writable through ``beginatom``/``endatom``:

* ``interrupt_disable`` — prevents *message-available* interrupts; while
  a message is pending it also enables the atomicity timer (``dispose``
  briefly disables, i.e. presets, the timer).
* ``timer_force`` — enables the atomicity timer unconditionally.

Two are kernel-only, configured before control returns to the user:

* ``dispose_pending`` — set by the OS in the message-available stub and
  reset by ``dispose``; ``endatom`` with this flag set means the
  application failed to free the message (dispose-failure trap).
* ``atomicity_extend`` — requests a trap at the end of the current
  atomic section, so the OS regains control exactly when user atomicity
  ends (the hook the revocation path and buffered mode rely on).
"""

from __future__ import annotations

#: Bit masks for beginatom/endatom operands (user-modifiable bits).
INTERRUPT_DISABLE = 0b01
TIMER_FORCE = 0b10
USER_MASK = INTERRUPT_DISABLE | TIMER_FORCE


class UserAtomicityControl:
    """The four UAC flags plus mask-based user manipulation."""

    __slots__ = ("interrupt_disable", "timer_force",
                 "dispose_pending", "atomicity_extend")

    def __init__(self) -> None:
        self.interrupt_disable = False
        self.timer_force = False
        self.dispose_pending = False
        self.atomicity_extend = False

    # -- mask encoding (Table 1: UAC := UAC | MASK etc.) ---------------
    def user_bits(self) -> int:
        bits = 0
        if self.interrupt_disable:
            bits |= INTERRUPT_DISABLE
        if self.timer_force:
            bits |= TIMER_FORCE
        return bits

    def set_user_bits(self, mask: int) -> None:
        """UAC := UAC | mask (beginatom semantics)."""
        if mask & ~USER_MASK:
            raise ValueError(f"mask {mask:#x} touches kernel UAC bits")
        if mask & INTERRUPT_DISABLE:
            self.interrupt_disable = True
        if mask & TIMER_FORCE:
            self.timer_force = True

    def clear_user_bits(self, mask: int) -> None:
        """UAC := UAC & ~mask (endatom semantics, after trap checks)."""
        if mask & ~USER_MASK:
            raise ValueError(f"mask {mask:#x} touches kernel UAC bits")
        if mask & INTERRUPT_DISABLE:
            self.interrupt_disable = False
        if mask & TIMER_FORCE:
            self.timer_force = False

    def snapshot(self) -> dict:
        """Full register state, for context save/debug."""
        return {
            "interrupt_disable": self.interrupt_disable,
            "timer_force": self.timer_force,
            "dispose_pending": self.dispose_pending,
            "atomicity_extend": self.atomicity_extend,
        }

    def restore(self, state: dict) -> None:
        for key, value in state.items():
            setattr(self, key, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = [k for k, v in self.snapshot().items() if v]
        return f"<UAC {' '.join(flags) or 'clear'}>"
