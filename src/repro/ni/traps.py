"""Interrupts and traps of the FUGU network interface (Table 2).

Interrupts are asynchronous (raised by hardware state changes); traps
are synchronous (raised by an instruction the running code executed).
In the simulator, traps propagate as :class:`TrapSignal` exceptions from
the NI operation back to the executing runtime, which vectors into the
kernel's trap handler — the behavioural equivalent of a precise trap.
"""

from __future__ import annotations

import enum
from typing import Any, Optional


class Interrupt(enum.Enum):
    """Asynchronous events (Table 2, upper half)."""

    #: User interrupt: raised when a message is available for reading.
    MESSAGE_AVAILABLE = "message-available"
    #: Kernel interrupt: message available with mismatched GID (or all
    #: messages when divert-mode is set).
    MISMATCH_AVAILABLE = "mismatch-available"
    #: Kernel interrupt: the atomic-section timer expired.
    ATOMICITY_TIMEOUT = "atomicity-timeout"


class Trap(enum.Enum):
    """Synchronous events (Table 2, lower half)."""

    #: Optional trap at the end of an atomic section (kernel-requested).
    ATOMICITY_EXTEND = "atomicity-extend"
    #: Optionally triggered by ``dispose`` (divert-mode set).
    DISPOSE_EXTEND = "dispose-extend"
    #: Triggered by ``endatom`` when the application failed to free the
    #: pending message inside its atomic section.
    DISPOSE_FAILURE = "dispose-failure"
    #: Triggered by ``dispose`` with no pending message.
    BAD_DISPOSE = "bad-dispose"
    #: User access to kernel registers, or user ``launch`` of a message
    #: carrying the kernel GID.
    PROTECTION_VIOLATION = "protection-violation"
    #: Page fault taken by user code (used by the two-case transition
    #: "page fault in the handler").
    PAGE_FAULT = "page-fault"


class TrapSignal(Exception):
    """A synchronous trap propagating out of an NI operation."""

    def __init__(self, trap: Trap, info: Any = None) -> None:
        super().__init__(trap.value)
        self.trap = trap
        self.info = info

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrapSignal({self.trap.value}, info={self.info!r})"
