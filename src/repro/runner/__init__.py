"""Parallel experiment runner with a persistent result cache.

Every evaluation artifact is built from independent simulation runs, so
this package turns "run the paper's sweeps" into a data-parallel
problem: describe each run as a picklable :class:`RunSpec`, fan specs
out over worker processes with :func:`run_specs`, memoize results on
disk with :class:`ResultCache`. See ``docs/SIMULATION.md`` ("Parallel
execution & caching") for the determinism contract and cache layout.
"""

from repro.runner.cache import DEFAULT_CACHE_DIR, PruneReport, ResultCache
from repro.runner.executor import (
    RunnerError, RunResult, default_jobs, fork_available,
    notice_serial_fallback, require_all, run_spec, run_specs,
)
from repro.runner.registry import EXECUTORS, UnknownRunKind, execute_spec
from repro.runner.spec import RunSpec, spec_key

__all__ = [
    "DEFAULT_CACHE_DIR", "EXECUTORS", "PruneReport", "ResultCache",
    "RunResult",
    "RunSpec", "RunnerError", "UnknownRunKind", "default_jobs",
    "execute_spec", "fork_available", "notice_serial_fallback",
    "require_all", "run_spec", "run_specs", "spec_key",
]
