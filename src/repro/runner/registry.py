"""The executor registry: spec kinds → runnable entry points.

Executors are referenced by dotted path (``"module:function"``) rather
than by object so that a :class:`~repro.runner.spec.RunSpec` stays pure
data: a worker process resolves the kind locally with a lazy import,
which sidesteps both pickling of callables and import cycles (the
experiment modules import the runner, not vice versa).

An executor is a callable ``fn(**params) -> (RunMetrics, extra)`` where
``extra`` is a JSON-serializable dict of kind-specific scalars (e.g.
the ablations' auxiliary counters). It must be deterministic in its
parameters.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Dict, Tuple

from repro.analysis.metrics import RunMetrics
from repro.runner.spec import RunSpec

Executor = Callable[..., Tuple[RunMetrics, Dict[str, Any]]]

#: kind -> "module:function". Extend here when adding a new run kind.
EXECUTORS: Dict[str, str] = {
    "multiprog": "repro.experiments.multiprog:execute_multiprog",
    "synth": "repro.experiments.synth_sweeps:execute_synth",
    "standalone": "repro.experiments.standalone:execute_standalone",
    "ablate_two_case": "repro.experiments.ablations:execute_two_case",
    "ablate_timeout": "repro.experiments.ablations:execute_timeout",
    "ablate_queue_depth":
        "repro.experiments.ablations:execute_queue_depth",
    "ablate_architecture":
        "repro.experiments.ablations:execute_architecture",
    "ablate_bulk": "repro.experiments.ablations:execute_bulk",
    "ablate_delivery": "repro.experiments.ablations:execute_delivery",
    "faulted": "repro.faults.runner:execute_faulted",
    "mailbox": "repro.experiments.mailbox_sweeps:execute_mailbox",
}

_resolved: Dict[str, Executor] = {}


class UnknownRunKind(ValueError):
    """A spec named a kind with no registered executor."""


def resolve(kind: str) -> Executor:
    """Import and memoize the executor for ``kind``."""
    fn = _resolved.get(kind)
    if fn is None:
        try:
            target = EXECUTORS[kind]
        except KeyError:
            raise UnknownRunKind(
                f"no executor registered for run kind {kind!r}; "
                f"known kinds: {sorted(EXECUTORS)}"
            ) from None
        module_name, _, attr = target.partition(":")
        fn = getattr(importlib.import_module(module_name), attr)
        _resolved[kind] = fn
    return fn


def execute_spec(spec: RunSpec) -> Tuple[RunMetrics, Dict[str, Any]]:
    """Run one spec in-process and return ``(metrics, extra)``."""
    return resolve(spec.kind)(**spec.as_dict())


__all__ = ["EXECUTORS", "execute_spec", "resolve", "UnknownRunKind"]
