"""The parallel run executor.

:func:`run_specs` is the single entry point every sweep and benchmark
routes through: it takes a list of :class:`~repro.runner.spec.RunSpec`,
satisfies what it can from the persistent cache, fans the misses out
over a ``ProcessPoolExecutor`` and returns :class:`RunResult` objects
*in spec order*.

Guarantees:

* **Determinism** — a run's metrics depend only on its spec, so the
  executor is free to run specs in any order, in any process; results
  are re-sorted to submission order before returning.
* **Fault isolation** — an exception inside one run is captured (with
  traceback) on its ``RunResult`` instead of killing the sweep.
* **Graceful degradation** — ``jobs=1``, a single outstanding run, or a
  platform without ``fork`` all take a plain serial path with identical
  semantics.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.analysis.metrics import RunMetrics
from repro.runner.cache import ResultCache
from repro.runner.registry import execute_spec
from repro.runner.spec import RunSpec


class RunnerError(RuntimeError):
    """A run failed and the caller required its result."""


@dataclass
class RunResult:
    """Outcome of one spec: metrics + extras, or a captured error."""

    spec: RunSpec
    metrics: Optional[RunMetrics] = None
    extra: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    def require(self) -> RunMetrics:
        """Metrics, or raise :class:`RunnerError` with the run's error."""
        if self.error is not None:
            raise RunnerError(
                f"run {self.spec.describe()} failed:\n{self.error}"
            )
        assert self.metrics is not None
        return self.metrics


def _execute_payload(spec: RunSpec) -> Dict[str, Any]:
    """Worker body: run one spec, return a picklable payload."""
    try:
        metrics, extra = execute_spec(spec)
    except Exception:
        return {"error": traceback.format_exc()}
    return {"metrics": metrics, "extra": extra}


def _payload_to_result(spec: RunSpec, payload: Dict[str, Any]) -> RunResult:
    if "error" in payload:
        return RunResult(spec=spec, error=payload["error"])
    return RunResult(spec=spec, metrics=payload["metrics"],
                     extra=payload["extra"])


def default_jobs() -> int:
    """Worker count when ``jobs`` is unspecified: one per CPU."""
    return os.cpu_count() or 1


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def run_specs(specs: Sequence[RunSpec],
              jobs: Optional[int] = None,
              cache: Optional[ResultCache] = None,
              progress: Optional[Callable[[RunResult], None]] = None,
              ) -> List[RunResult]:
    """Execute ``specs`` and return results in the same order.

    ``jobs=None`` uses :func:`default_jobs`; ``jobs=1`` (or a platform
    without ``fork``) runs serially in-process. When a ``cache`` is
    given, hits skip execution entirely and fresh results are stored
    back. ``progress`` is invoked once per completed result, in
    completion order.
    """
    results: List[Optional[RunResult]] = [None] * len(specs)
    todo: List[int] = []

    for index, spec in enumerate(specs):
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            metrics, extra = hit
            result = RunResult(spec=spec, metrics=metrics, extra=extra,
                               cached=True)
            results[index] = result
            if progress is not None:
                progress(result)
        else:
            todo.append(index)

    if jobs is None:
        jobs = default_jobs()
    parallel = jobs > 1 and len(todo) > 1 and _fork_available()

    def finish(index: int, payload: Dict[str, Any]) -> None:
        result = _payload_to_result(specs[index], payload)
        if cache is not None and result.ok:
            cache.put(result.spec, result.metrics, result.extra)
        results[index] = result
        if progress is not None:
            progress(result)

    if parallel:
        workers = min(jobs, len(todo))
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=context) as pool:
            futures = {
                pool.submit(_execute_payload, specs[index]): index
                for index in todo
            }
            for future in as_completed(futures):
                finish(futures[future], future.result())
    else:
        for index in todo:
            finish(index, _execute_payload(specs[index]))

    return results  # type: ignore[return-value]


def run_spec(spec: RunSpec,
             cache: Optional[ResultCache] = None) -> RunResult:
    """Convenience single-spec execution (always serial)."""
    return run_specs([spec], jobs=1, cache=cache)[0]


def require_all(results: Sequence[RunResult]) -> List[RunMetrics]:
    """Metrics of every result, raising on the first failure."""
    return [result.require() for result in results]


__all__ = [
    "RunResult", "RunnerError", "run_specs", "run_spec", "require_all",
    "default_jobs",
]
