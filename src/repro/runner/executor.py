"""The parallel run executor.

:func:`run_specs` is the single entry point every sweep and benchmark
routes through: it takes a list of :class:`~repro.runner.spec.RunSpec`,
satisfies what it can from the persistent cache, fans the misses out
over a ``ProcessPoolExecutor`` and returns :class:`RunResult` objects
*in spec order*.

Guarantees:

* **Determinism** — a run's metrics depend only on its spec, so the
  executor is free to run specs in any order, in any process; results
  are re-sorted to submission order before returning.
* **Fault isolation** — an exception inside one run is captured (with
  traceback) on its ``RunResult`` instead of killing the sweep.
* **Graceful degradation** — ``jobs=1``, a platform without ``fork``,
  or (in the default ``mode="auto"``) a miss count too small to
  amortize process dispatch all take a plain serial path with identical
  semantics.

Two-case dispatch: process fan-out is the *uncommon* case and only
engages when it can pay for itself — effective workers > 1 (capped by
the CPU count) and at least two cache misses per worker. Misses are
then batched into per-worker chunks (one pickle + submit per worker,
not per spec) and the simulation modules are imported in the parent
before forking, so workers are born warm. ``mode="serial"`` /
``mode="parallel"`` force either path (benchmarks measure both), and
the optional ``info`` dict reports what was chosen and what dispatch
cost.
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
import sys
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.analysis.metrics import RunMetrics
from repro.runner.cache import ResultCache
from repro.runner.registry import execute_spec
from repro.runner.spec import RunSpec


class RunnerError(RuntimeError):
    """A run failed and the caller required its result."""


@dataclass
class RunResult:
    """Outcome of one spec: metrics + extras, or a captured error."""

    spec: RunSpec
    metrics: Optional[RunMetrics] = None
    extra: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    def require(self) -> RunMetrics:
        """Metrics, or raise :class:`RunnerError` with the run's error."""
        if self.error is not None:
            raise RunnerError(
                f"run {self.spec.describe()} failed:\n{self.error}"
            )
        assert self.metrics is not None
        return self.metrics


def _execute_payload(spec: RunSpec) -> Dict[str, Any]:
    """Worker body: run one spec, return a picklable payload."""
    try:
        metrics, extra = execute_spec(spec)
    except Exception:
        return {"error": traceback.format_exc()}
    return {"metrics": metrics, "extra": extra}


def _execute_batch(specs: Sequence[RunSpec]) -> List[Dict[str, Any]]:
    """Worker body for one per-worker chunk: errors stay per-spec."""
    return [_execute_payload(spec) for spec in specs]


#: Modules a run always needs; imported in the parent before forking
#: (children inherit them) and re-imported by the pool initializer
#: (a no-op when already warm, a real warm-up under spawn).
_WARM_MODULES = (
    "repro.machine.machine",
    "repro.glaze.kernel",
    "repro.network.fabric",
    "repro.ni.interface",
    "repro.runner.registry",
    "repro.analysis.metrics",
)


def _warm_import() -> None:
    for name in _WARM_MODULES:
        importlib.import_module(name)


def _payload_to_result(spec: RunSpec, payload: Dict[str, Any]) -> RunResult:
    if "error" in payload:
        return RunResult(spec=spec, error=payload["error"])
    return RunResult(spec=spec, metrics=payload["metrics"],
                     extra=payload["extra"])


def default_jobs() -> int:
    """Worker count when ``jobs`` is unspecified: one per CPU."""
    return os.cpu_count() or 1


def fork_available() -> bool:
    """True when this platform supports the ``fork`` start method.

    The single source of truth for every layer that fans out over
    processes (the spec executor here, and the shard coordinator in
    :mod:`repro.shard`); platforms without ``fork`` degrade to serial
    execution with a one-line notice instead of silence.
    """
    return "fork" in multiprocessing.get_all_start_methods()


#: Back-compat alias (the helper was private before the shard layer
#: became its second caller).
_fork_available = fork_available


def notice_serial_fallback(what: str) -> None:
    """Print the one-line degraded-to-serial notice on stderr."""
    print(f"repro: {what}: 'fork' start method unavailable on this "
          "platform; falling back to single-process execution",
          file=sys.stderr)


def run_specs(specs: Sequence[RunSpec],
              jobs: Optional[int] = None,
              cache: Optional[ResultCache] = None,
              progress: Optional[Callable[[RunResult], None]] = None,
              mode: str = "auto",
              info: Optional[Dict[str, Any]] = None,
              ) -> List[RunResult]:
    """Execute ``specs`` and return results in the same order.

    ``jobs=None`` uses :func:`default_jobs`. When a ``cache`` is given,
    hits skip execution entirely and fresh results are stored back.
    ``progress`` is invoked once per completed result, in completion
    order.

    ``mode`` selects the dispatch case:

    * ``"auto"`` (default) — parallel only when it can pay for itself:
      effective workers (``jobs`` capped by the CPU count) above one
      *and* at least two cache misses per worker; otherwise serial.
    * ``"serial"`` / ``"parallel"`` — force that path (``"parallel"``
      still degrades to serial when ``fork`` is unavailable or nothing
      misses the cache).

    When ``info`` is a dict it receives the decision record: ``mode``
    (the path actually taken), ``mode_reason``, ``requested_jobs``,
    ``effective_jobs``, ``workers``, ``cache_hits``, ``misses`` and
    ``dispatch_seconds`` (pool spin-up + batch submission wall time).
    """
    if mode not in ("auto", "serial", "parallel"):
        raise ValueError(f"unknown run_specs mode: {mode!r}")
    results: List[Optional[RunResult]] = [None] * len(specs)
    todo: List[int] = []

    for index, spec in enumerate(specs):
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            metrics, extra = hit
            result = RunResult(spec=spec, metrics=metrics, extra=extra,
                               cached=True)
            results[index] = result
            if progress is not None:
                progress(result)
        else:
            todo.append(index)

    if jobs is None:
        jobs = default_jobs()
    effective = max(1, min(jobs, os.cpu_count() or 1))
    if not fork_available():
        parallel, reason = False, "fork unavailable"
        if mode != "serial" and len(todo) > 1:
            notice_serial_fallback("run_specs")
    elif not todo:
        parallel, reason = False, "all cached"
    elif mode == "serial":
        parallel, reason = False, "forced serial"
    elif mode == "parallel":
        parallel, reason = len(todo) > 1, (
            "forced parallel" if len(todo) > 1 else "single miss"
        )
    elif effective <= 1:
        parallel, reason = False, "effective jobs == 1"
    elif len(todo) < 2 * effective:
        parallel, reason = False, (
            f"misses ({len(todo)}) < 2x effective jobs ({effective})"
        )
    else:
        parallel, reason = True, "misses amortize dispatch"

    # Forced-parallel keeps the requested worker count (benchmarks
    # measure oversubscription on purpose); auto caps at the CPU count.
    worker_budget = jobs if mode == "parallel" else effective
    workers = min(worker_budget, len(todo)) if parallel else 0
    dispatch_seconds = 0.0

    def finish(index: int, payload: Dict[str, Any]) -> None:
        result = _payload_to_result(specs[index], payload)
        if cache is not None and result.ok:
            cache.put(result.spec, result.metrics, result.extra)
        results[index] = result
        if progress is not None:
            progress(result)

    if parallel:
        # One interleaved chunk per worker: a single pickle + submit
        # each, and adjacent (often similar-cost) specs spread across
        # workers instead of landing on the same one.
        chunks = [todo[i::workers] for i in range(workers)]
        _warm_import()  # fork inherits warm modules from the parent
        context = multiprocessing.get_context("fork")
        started = time.perf_counter()
        with ProcessPoolExecutor(max_workers=workers, mp_context=context,
                                 initializer=_warm_import) as pool:
            futures = {
                pool.submit(_execute_batch,
                            [specs[index] for index in chunk]): chunk
                for chunk in chunks
            }
            dispatch_seconds = time.perf_counter() - started
            for future in as_completed(futures):
                chunk = futures[future]
                for index, payload in zip(chunk, future.result()):
                    finish(index, payload)
    else:
        for index in todo:
            finish(index, _execute_payload(specs[index]))

    if info is not None:
        info.update(
            mode="parallel" if parallel else "serial",
            mode_reason=reason,
            requested_jobs=jobs,
            effective_jobs=effective,
            workers=workers,
            cache_hits=len(specs) - len(todo),
            misses=len(todo),
            dispatch_seconds=dispatch_seconds,
        )
    return results  # type: ignore[return-value]


def run_spec(spec: RunSpec,
             cache: Optional[ResultCache] = None) -> RunResult:
    """Convenience single-spec execution (always serial)."""
    return run_specs([spec], jobs=1, cache=cache)[0]


def require_all(results: Sequence[RunResult]) -> List[RunMetrics]:
    """Metrics of every result, raising on the first failure."""
    return [result.require() for result in results]


__all__ = [
    "RunResult", "RunnerError", "run_specs", "run_spec", "require_all",
    "default_jobs", "fork_available", "notice_serial_fallback",
]
