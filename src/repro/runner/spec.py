"""Run specifications: the picklable unit of parallel execution.

A :class:`RunSpec` is a pure-data description of one simulation run — a
registered *kind* (which names an executor function, see
:mod:`repro.runner.registry`) plus a flat mapping of JSON-scalar
parameters. Specs are hashable, picklable, order-insensitive in their
parameters, and serialize stably, which makes them usable both as
process-pool work items and as persistent cache keys.

Determinism contract: a spec fully determines its
:class:`~repro.analysis.metrics.RunMetrics`. Identical specs produce
bit-identical metrics whether executed serially, in a worker process,
or replayed from the on-disk cache. Anything that could perturb results
must therefore be part of the spec (or of the cost-model version baked
into :func:`spec_key`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.core.costs import COST_MODEL_VERSION

#: Bump when the spec/cache serialization format itself changes.
SPEC_FORMAT_VERSION = 1

_SCALARS = (type(None), bool, int, float, str)


@dataclass(frozen=True)
class RunSpec:
    """One simulation run: an executor kind plus its parameters.

    ``params`` is a tuple of sorted ``(name, value)`` pairs so the spec
    is hashable and its identity does not depend on keyword order.
    Build specs with :meth:`make`.
    """

    kind: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, kind: str, **params: Any) -> "RunSpec":
        for name, value in params.items():
            if not isinstance(value, _SCALARS):
                raise TypeError(
                    f"RunSpec parameter {name}={value!r} is not a JSON "
                    "scalar; specs must be pure data"
                )
        return cls(kind=kind, params=tuple(sorted(params.items())))

    def as_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def __getitem__(self, name: str) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        raise KeyError(name)

    def describe(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.kind}({inner})"


def spec_key(spec: RunSpec,
             cost_model_version: int = None) -> str:
    """Stable content hash of a spec, for cache addressing.

    The key covers the spec itself, the cache format version and the
    cost-model version: bumping ``COST_MODEL_VERSION`` in
    ``repro.core.costs`` invalidates every previously cached result.
    """
    if cost_model_version is None:
        # Late import of the *current* value so tests can monkeypatch
        # repro.core.costs.COST_MODEL_VERSION and observe invalidation.
        from repro.core import costs
        cost_model_version = costs.COST_MODEL_VERSION
    payload = json.dumps(
        {
            "format": SPEC_FORMAT_VERSION,
            "cost_model_version": cost_model_version,
            "kind": spec.kind,
            "params": list(spec.params),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


__all__ = ["RunSpec", "spec_key", "SPEC_FORMAT_VERSION",
           "COST_MODEL_VERSION"]
