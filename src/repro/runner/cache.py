"""Persistent on-disk result cache for simulation runs.

Layout: one JSON file per run under the cache directory (default
``.repro_cache/`` in the working directory, overridable with the
``REPRO_CACHE_DIR`` environment variable), named by the spec's content
hash::

    .repro_cache/
        a1b2c3....json    # {"spec": ..., "metrics": ..., "extra": ...}

The hash (see :func:`repro.runner.spec.spec_key`) covers the spec, the
cache format version and ``repro.core.costs.COST_MODEL_VERSION`` —
bumping the cost model orphans every stale entry, which is exactly the
invalidation rule the determinism contract needs. Orphaned files are
ignored (and removed by :meth:`ResultCache.prune`).

JSON round-trips Python floats exactly (shortest-repr), so a cached
:class:`~repro.analysis.metrics.RunMetrics` is bit-identical to the
freshly computed one.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.analysis.metrics import RunMetrics
from repro.runner.spec import SPEC_FORMAT_VERSION, RunSpec, spec_key

#: Default cache directory name, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_cache"


@dataclass
class PruneReport:
    """What :meth:`ResultCache.prune` removed (and kept)."""

    stale: int = 0     # entries from an old format/cost-model version
    tmp: int = 0       # orphaned *.tmp files from killed writers
    kept: int = 0      # entries still valid under the current versions
    #: Files that vanished between glob and unlink — a concurrent
    #: writer's ``os.replace`` or another pruner got there first. The
    #: race is benign (the file is gone either way) but reported so a
    #: contended cache directory is visible rather than silent.
    missing: int = 0

    @property
    def removed(self) -> int:
        return self.stale + self.tmp


#: Historical alias (the original name of the prune report).
PruneStats = PruneReport


class ResultCache:
    """File-per-run JSON cache, addressed by spec content hash."""

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        if directory is None:
            directory = os.environ.get("REPRO_CACHE_DIR",
                                       DEFAULT_CACHE_DIR)
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _path(self, spec: RunSpec) -> Path:
        return self.directory / f"{spec_key(spec)}.json"

    def get(self, spec: RunSpec) -> Optional[Tuple[RunMetrics, Dict[str, Any]]]:
        """Load ``(metrics, extra)`` for a spec, or None on a miss.

        Unreadable or malformed entries count as misses — a corrupt
        file must never poison a sweep.
        """
        path = self._path(spec)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            metrics = RunMetrics(**payload["metrics"])
            extra = payload.get("extra", {})
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return metrics, extra

    def put(self, spec: RunSpec, metrics: RunMetrics,
            extra: Optional[Dict[str, Any]] = None) -> None:
        """Store one result atomically (write-to-temp then rename)."""
        from repro.core import costs  # late: current (patchable) version

        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": SPEC_FORMAT_VERSION,
            "cost_model_version": costs.COST_MODEL_VERSION,
            "spec": {"kind": spec.kind, "params": spec.as_dict()},
            "metrics": asdict(metrics),
            "extra": extra or {},
        }
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, self._path(spec))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for p in self.directory.glob("*.json"))

    def clear(self) -> int:
        """Delete every cached entry (and leftover ``*.tmp`` files);
        returns the number of entries removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for path in self.directory.glob("*.tmp"):
                try:
                    path.unlink()
                except OSError:
                    pass
        return removed

    def prune(self) -> PruneReport:
        """Remove stale entries and orphaned temp files.

        An entry is stale when its content no longer hashes to its
        filename under the *current* ``SPEC_FORMAT_VERSION`` and
        ``COST_MODEL_VERSION`` — i.e. nothing will ever look it up
        again — or when it is unreadable. ``*.tmp`` files are leftovers
        from writers killed between ``mkstemp`` and the atomic rename;
        they are always garbage.
        """
        report = PruneReport()
        if not self.directory.is_dir():
            return report
        for path in self.directory.glob("*.tmp"):
            try:
                path.unlink()
                report.tmp += 1
            except FileNotFoundError:
                report.missing += 1
            except OSError:
                pass
        for path in self.directory.glob("*.json"):
            # The glob snapshot races against concurrent writers: a
            # file may be replaced or removed between listing and the
            # stat/unlink below. Vanished files are counted, never
            # allowed to abort the prune mid-way.
            if self._is_stale(path):
                try:
                    path.unlink()
                    report.stale += 1
                except FileNotFoundError:
                    report.missing += 1
                except OSError:
                    pass
            else:
                report.kept += 1
        return report

    @staticmethod
    def _is_stale(path: Path) -> bool:
        """True when no current-version lookup can ever hit ``path``."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            spec = RunSpec.make(payload["spec"]["kind"],
                                **payload["spec"]["params"])
        except (OSError, ValueError, KeyError, TypeError):
            return True
        # spec_key embeds the format and cost-model versions, so one
        # recomputation covers both version fields and plain corruption.
        return spec_key(spec) != path.stem


__all__ = ["ResultCache", "PruneReport", "PruneStats", "DEFAULT_CACHE_DIR"]
