"""The synth-N producer/consumer application (Section 5.2).

"Our synthetic application, synth-N, performs producer-consumer
communication between four processors with various amounts of
synchronization. At the consumer node, each incoming message from the
producer invokes a request handler that stalls for a short period, and
then sends a reply message. The time to process one of these request
messages (T_hand) is fixed in our experiment at 290 cycles, including
interrupt and kernel overhead. Each node iteratively generates groups
of N messages, directed randomly to the other nodes, and then waits for
all the acknowledgements from that group of requests, effectively
creating a synchronization point and limiting the maximum number of
outstanding requests to N. The interval between individual message
sends is a uniformly distributed random variable with an average of
T_betw cycles."

Figures 9 and 10 sweep ``t_betw`` and the buffered-path cost with
``N ∈ {10, 100, 1000}``.
"""

from __future__ import annotations

from typing import Generator, List

from repro.apps.base import Application
from repro.machine.processor import Compute
from repro.core.udm import UdmRuntime
from repro.sim.random import DeterministicRng


class SynthApplication(Application):
    """synth-N: grouped request/reply traffic with tunable send rate."""

    name = "synth"

    def __init__(self, group_size: int = 100, t_betw: int = 500,
                 t_hand: int = 290, total_messages_per_node: int = 2000,
                 num_nodes: int = 4, seed: int = 1,
                 locality_groups: int = 0) -> None:
        if group_size < 1:
            raise ValueError("group size must be at least 1")
        if num_nodes < 2:
            raise ValueError("producer/consumer needs at least two nodes")
        if locality_groups:
            if num_nodes % locality_groups:
                raise ValueError(
                    "locality groups must divide the node count"
                )
            if num_nodes // locality_groups < 2:
                raise ValueError(
                    "each locality group needs at least two nodes"
                )
        self.group_size = group_size
        self.t_betw = t_betw
        self.t_hand = t_hand
        self.total_messages_per_node = total_messages_per_node
        self.num_nodes = num_nodes
        self.seed = seed
        #: 0 keeps the paper's all-to-all peer choice; N > 0 confines
        #: each node's random destinations to its contiguous group of
        #: ``num_nodes // N`` nodes (the internet-scale "rack locality"
        #: variant, and what lets sharded execution free-run).
        self.locality_groups = locality_groups
        self.name = f"synth-{group_size}"
        # Per-node acknowledgement counters (node-local state).
        self._acks: List[int] = [0] * num_nodes
        self.replies_received: List[int] = [0] * num_nodes

    def _peers(self, node_index: int) -> List[int]:
        """The destinations this node may address."""
        if not self.locality_groups:
            return [n for n in range(self.num_nodes) if n != node_index]
        size = self.num_nodes // self.locality_groups
        start = (node_index // size) * size
        return [n for n in range(start, start + size) if n != node_index]

    def traffic_locality_groups(self):
        if not self.locality_groups:
            return None
        size = self.num_nodes // self.locality_groups
        return [tuple(range(start, start + size))
                for start in range(0, self.num_nodes, size)]

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _handler_body_cycles(self, rt: UdmRuntime) -> int:
        """Handler stall sized so the *total* per-request cost (body
        plus interrupt and kernel overhead) is T_hand, as in the paper."""
        overhead = rt.costs.fast.receive_interrupt_total
        return max(0, self.t_hand - overhead)

    def _h_request(self, rt: UdmRuntime, msg) -> Generator:
        producer = msg.payload[0]
        yield from rt.dispose_current()
        yield Compute(self._handler_body_cycles(rt))
        yield from rt.inject(producer, self._h_reply, (rt.node_index,))

    def _h_reply(self, rt: UdmRuntime, msg) -> Generator:
        yield from rt.dispose_current()
        yield Compute(5)
        self._acks[rt.node_index] += 1
        self.replies_received[rt.node_index] += 1

    # ------------------------------------------------------------------
    # Main
    # ------------------------------------------------------------------
    def main(self, rt: UdmRuntime, node_index: int) -> Generator:
        rng = DeterministicRng(self.seed, f"synth/{node_index}")
        others = self._peers(node_index)
        sent = 0
        while sent < self.total_messages_per_node:
            group = min(self.group_size, self.total_messages_per_node - sent)
            group_start_acks = self._acks[node_index]
            for _ in range(group):
                interval = rng.uniform_interval(self.t_betw)
                if interval:
                    yield Compute(interval)
                dst = rng.choice(others)
                yield from rt.inject(dst, self._h_request, (node_index,))
                sent += 1
            # Synchronization point: wait for the whole group's replies.
            while self._acks[node_index] < group_start_acks + group:
                yield Compute(50)

    def describe(self) -> str:
        return (
            f"synth-{self.group_size}: {self.total_messages_per_node} "
            f"requests/node, T_betw={self.t_betw}, T_hand={self.t_hand}"
        )
