"""Internet-scale mailbox service workload (the petmail scenario).

The paper's two-case machinery was built for *tightly coupled* jobs,
but the same fast-path/buffered split shows up in a very different
regime: an always-on mailbox service absorbing open-loop traffic from
millions of mostly-offline senders. Mail arrives whether or not the
recipient is connected; the service tier must absorb bursts (buffered
case), suppress client retransmission duplicates, and survive node
crashes by letting senders replay.

Topology: nodes ``[0, mailbox_nodes)`` host the mailbox service; the
remaining nodes are *gateways*, each aggregating a disjoint shard of
the logical client population. A gateway's open-loop send process
draws the sending client from an integer log-uniform (Zipf-like)
distribution and the recipient likewise, modulates its send gap with
an integer triangle-wave diurnal envelope, and occasionally submits
the same message twice (impatient clients double-send). Client state
lives in a bounded LRU *flow table*, so ``clients`` can be millions of
logical senders while resident state stays O(active flows).

All traffic — submission, retrieval, delivery, epoch announcements —
rides one :class:`~repro.protocols.reliable.ReliableTransport`, so the
workload composes with fault plans: drops are repaired by retries, and
``mailbox_crashes=`` faults wipe a seeded mailbox node (queued mail +
dedup state), bump its epoch, and reconnecting gateways answer with a
replay of their bounded submission logs.

Everything is integer arithmetic on named
:class:`~repro.sim.random.DeterministicRng` streams: no wall clock, no
floating trig, so metrics are bit-identical across serial, parallel
and cache-replay execution.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import OrderedDict, deque
from typing import (
    Any, Callable, Deque, Dict, Generator, List, Optional, Tuple,
)

from repro.apps.base import Application
from repro.machine.processor import Compute
from repro.core.udm import UdmRuntime
from repro.protocols.reliable import ReliableTransport
from repro.sim.random import DeterministicRng

#: Upper bucket edges (cycles) for the retrieval-latency histogram:
#: time from enqueue at the mailbox to delivery at the gateway. Shared
#: with the observatory declaration so snapshots stay comparable.
RETRIEVAL_LATENCY_EDGES: Tuple[int, ...] = (
    2_000, 10_000, 50_000, 200_000, 1_000_000, 5_000_000,
)


def heavy_tail_rank(rng: DeterministicRng, n: int) -> int:
    """A rank in ``[0, n)`` with log-uniform (Zipf-like) mass.

    Picks an octave ``[2^k, 2^(k+1))`` uniformly, then a rank uniformly
    inside it — equal probability mass per octave, so rank 0 is drawn
    ~``bit_length(n)`` times more often than a uniform draw would.
    Integer-only: platform-deterministic, and O(1) regardless of ``n``,
    which is what lets ``clients`` scale to millions.
    """
    if n <= 1:
        return 0
    k = rng.uniform_int(0, n.bit_length() - 1)
    lo = min(1 << k, n)
    hi = min(n, (1 << (k + 1)) - 1)
    return rng.uniform_int(lo, hi) - 1


class MailboxStats:
    """Workload-global counters; the metric-collection ground truth."""

    __slots__ = (
        "submitted", "absorbed", "enqueued", "retrieved", "delivered",
        "overflow_drops", "duplicates_suppressed", "client_duplicates",
        "reconnects", "replays", "crashes", "crash_losses",
        "flows_created", "flows_evicted", "dedup_evictions",
        "active_flows_peak", "occupancy_peak",
        "latency_counts", "latency_count", "latency_total",
    )

    def __init__(self) -> None:
        self.submitted = 0            # transport sends of "submit"
        self.absorbed = 0             # "submit" handled at a mailbox
        self.enqueued = 0             # accepted into a recipient queue
        self.retrieved = 0            # popped for a reconnect
        self.delivered = 0            # "deliver" handled at a gateway
        self.overflow_drops = 0       # mailbox quota rejections
        self.duplicates_suppressed = 0  # app-level dedup hits
        self.client_duplicates = 0    # impatient double-sends injected
        self.reconnects = 0           # "retrieve" requests issued
        self.replays = 0              # submissions replayed post-crash
        self.crashes = 0              # mailbox-node crash events
        self.crash_losses = 0         # queued mail wiped by crashes
        self.flows_created = 0
        self.flows_evicted = 0        # LRU pressure on the flow table
        self.dedup_evictions = 0      # LRU pressure on the dedup cache
        self.active_flows_peak = 0
        self.occupancy_peak = 0       # single-node queued-mail high-water
        self.latency_counts = [0] * (len(RETRIEVAL_LATENCY_EDGES) + 1)
        self.latency_count = 0
        self.latency_total = 0

    def note_latency(self, value: int) -> None:
        self.latency_counts[bisect_left(RETRIEVAL_LATENCY_EDGES,
                                        value)] += 1
        self.latency_count += 1
        self.latency_total += value

    def latency_mean(self) -> float:
        if not self.latency_count:
            return 0.0
        return self.latency_total / self.latency_count

    def snapshot(self) -> Dict[str, Any]:
        """JSON-scalar summary for RunResult.extra payloads."""
        out = {name: getattr(self, name) for name in self.__slots__
               if name != "latency_counts"}
        out["latency_counts"] = list(self.latency_counts)
        return out


class MailboxService:
    """Server-side state: per-recipient queues, dedup cache, epochs.

    One instance is shared by the mailbox-node handler coroutines (the
    state a real service would keep in node-local memory, sharded by
    ``home``). Registered on the machine via
    :meth:`~repro.machine.machine.Machine.register_mailbox` so metric
    collection, the observatory and the fault injector's crash
    schedule can reach it.
    """

    def __init__(self, mailbox_nodes: int, capacity: int,
                 dedup_cache: int, stats: MailboxStats, *,
                 node_list: Optional[List[int]] = None,
                 home: Optional[Callable[[int], int]] = None,
                 dedup_partitions: int = 1,
                 partition_of: Optional[Callable[[int], int]] = None,
                 ) -> None:
        self.mailbox_node_list = (list(node_list) if node_list is not None
                                  else list(range(mailbox_nodes)))
        self.capacity = capacity
        self.dedup_cache = dedup_cache
        self.stats = stats
        self._home = home
        # Locality placement partitions the dedup LRU per group: a
        # single global LRU would let one group's inserts evict another
        # group's entries, coupling groups through eviction order —
        # exactly what sharded execution cannot reproduce. One
        # partition (the default) is the original single global LRU.
        self._partitions = max(1, dedup_partitions)
        self._partition_of = partition_of
        self._partition_cap = max(1, dedup_cache // self._partitions)
        #: recipient -> deque of (client, seq, enqueue_time).
        self.queues: Dict[int, Deque[Tuple[int, int, int]]] = {}
        #: Per-partition (recipient, client) -> highest seq accepted
        #: (bounded LRU each). ``seen`` aliases partition 0 so existing
        #: single-partition callers keep working.
        self.seen_parts: List["OrderedDict[Tuple[int, int], int]"] = [
            OrderedDict() for _ in range(self._partitions)
        ]
        self.seen = self.seen_parts[0]
        self.occupancy: Dict[int, int] = {
            n: 0 for n in self.mailbox_node_list
        }
        self.epoch: Dict[int, int] = {
            n: 0 for n in self.mailbox_node_list
        }

    def home(self, recipient: int) -> int:
        if self._home is not None:
            return self._home(recipient)
        return self.mailbox_node_list[
            recipient % len(self.mailbox_node_list)]

    def queued_total(self) -> int:
        return sum(len(q) for q in self.queues.values())

    def accept(self, node: int, client: int, recipient: int, seq: int,
               now: int) -> bool:
        """Absorb one submission at its home node; False on drop."""
        stats = self.stats
        key = (recipient, client)
        part = (self.seen_parts[self._partition_of(recipient)]
                if self._partition_of is not None else self.seen)
        last = part.get(key)
        if last is not None and seq <= last:
            part.move_to_end(key)
            stats.duplicates_suppressed += 1
            return False
        part[key] = seq
        part.move_to_end(key)
        while len(part) > self._partition_cap:
            part.popitem(last=False)
            stats.dedup_evictions += 1
        queue = self.queues.get(recipient)
        if queue is None:
            queue = self.queues[recipient] = deque()
        if len(queue) >= self.capacity:
            stats.overflow_drops += 1
            return False
        queue.append((client, seq, now))
        occ = self.occupancy[node] + 1
        self.occupancy[node] = occ
        if occ > stats.occupancy_peak:
            stats.occupancy_peak = occ
        stats.enqueued += 1
        return True

    def crash(self, now: int, rng: DeterministicRng) -> bool:
        """Fault-injector hook: crash one seeded mailbox node.

        Wipes the victim's queued mail and its share of the dedup
        cache and bumps its epoch; gateways observe the epoch change
        on their next reconnect and replay their bounded logs.
        """
        nodes = self.mailbox_node_list
        victim = nodes[rng.uniform_int(0, len(nodes) - 1)]
        lost = 0
        for recipient in sorted(self.queues):
            if self.home(recipient) != victim:
                continue
            queue = self.queues[recipient]
            lost += len(queue)
            queue.clear()
        self.occupancy[victim] = 0
        for part in self.seen_parts:
            for key in [k for k in part if self.home(k[0]) == victim]:
                del part[key]
        self.epoch[victim] += 1
        self.stats.crashes += 1
        self.stats.crash_losses += lost
        return True


class MailboxApplication(Application):
    """Always-on mailbox nodes fed by client-aggregating gateways."""

    name = "mailbox"

    def __init__(self, num_nodes: int = 8, mailbox_nodes: int = 2,
                 clients: int = 100_000, recipients: int = 48,
                 messages_per_gateway: int = 400, mean_gap: int = 600,
                 dup_rate: float = 0.08, diurnal_period: int = 150_000,
                 diurnal_amplitude_milli: int = 600,
                 mailbox_capacity: int = 1_024,
                 max_active_flows: int = 512, dedup_cache: int = 4_096,
                 reconnects: int = 2, replay_window: int = 32,
                 retrieve_batch: int = 64,
                 handler_cycles: int = 60, seed: int = 1,
                 record_deliveries: bool = False,
                 locality_groups: int = 0) -> None:
        if mailbox_nodes < 1:
            raise ValueError("need at least one mailbox node")
        if num_nodes < mailbox_nodes + 1:
            raise ValueError("need at least one gateway node")
        if clients < 1 or recipients < 1:
            raise ValueError("clients and recipients must be positive")
        if messages_per_gateway < 1 or mean_gap < 1:
            raise ValueError("message count and gap must be positive")
        if not 0.0 <= dup_rate <= 1.0:
            raise ValueError(f"dup_rate={dup_rate} is not a probability")
        if locality_groups:
            if locality_groups < 1:
                raise ValueError("locality_groups cannot be negative")
            if num_nodes % locality_groups:
                raise ValueError("locality groups must divide num_nodes")
            if mailbox_nodes % locality_groups:
                raise ValueError(
                    "locality groups must divide mailbox_nodes")
            if recipients % locality_groups:
                raise ValueError(
                    "locality groups must divide recipients")
            if (num_nodes - mailbox_nodes) % locality_groups:
                raise ValueError(
                    "locality groups must divide the gateway count")
            if (num_nodes // locality_groups
                    <= mailbox_nodes // locality_groups):
                raise ValueError(
                    "each locality group needs at least one gateway")
        self.num_nodes = num_nodes
        self.mailbox_nodes = mailbox_nodes
        self.num_gateways = num_nodes - mailbox_nodes
        self.clients = clients
        self.recipients = recipients
        self.messages_per_gateway = messages_per_gateway
        self.mean_gap = mean_gap
        self.dup_rate = dup_rate
        self.diurnal_period = diurnal_period
        self.diurnal_amplitude_milli = min(999, diurnal_amplitude_milli)
        self.max_active_flows = max_active_flows
        self.reconnects = reconnects
        self.replay_window = replay_window
        self.retrieve_batch = max(1, retrieve_batch)
        self.handler_cycles = handler_cycles
        self.seed = seed
        self.record_deliveries = record_deliveries
        #: Locality placement (0 = the classic layout). With ``G``
        #: groups, the node space splits into ``G`` contiguous blocks,
        #: each holding its own mailbox nodes, gateways and recipient
        #: slice — no message ever crosses a group boundary, which is
        #: what lets ``repro mailbox --shards N`` free-run distributed.
        self.locality_groups = locality_groups
        self._groups = max(1, locality_groups)
        self._group_size = num_nodes // self._groups
        self._mb_per_group = mailbox_nodes // self._groups
        self._gateways_per_group = self.num_gateways // self._groups

        self.stats = MailboxStats()
        if locality_groups:
            node_list = [n for n in range(num_nodes)
                         if n % self._group_size < self._mb_per_group]
            self.service = MailboxService(
                mailbox_nodes, mailbox_capacity, dedup_cache,
                self.stats, node_list=node_list, home=self._home_node,
                dedup_partitions=locality_groups,
                partition_of=lambda r: r % locality_groups)
        else:
            self.service = MailboxService(mailbox_nodes,
                                          mailbox_capacity,
                                          dedup_cache, self.stats)
        # Wide-area clients tolerate seconds of latency; the default
        # 4k-cycle timeout would congestion-collapse here (acks sit
        # behind deep mailbox backlogs, every premature retry deepens
        # them), so the retry clock matches the service tier's worst
        # queueing delay instead. One transport per locality group:
        # message state is per-(src, dst) pair either way, but the
        # drain loop's liveness test reads transport-wide counters,
        # and those must not couple groups under locality placement.
        self._transports = [
            ReliableTransport(num_nodes, retry_timeout=64_000,
                              deliver=self._deliver)
            for _ in range(self._groups)
        ]
        self.transport = self._transports[0]
        # Per-gateway flow tables (client -> sends), bounded LRU.
        self._flow_tables: Dict[int, "OrderedDict[int, int]"] = {}
        self._flow_cap = max(1, max_active_flows // self.num_gateways)
        # Per-gateway bounded replay logs: (home, client, recipient, seq).
        self._replay_logs: Dict[int, Deque[Tuple[int, int, int, int]]] = {}
        # (gateway node, mailbox node) -> last epoch acknowledged.
        self._epoch_seen: Dict[Tuple[int, int], int] = {}
        # Recipients with a reconnect in flight ("done" not yet seen):
        # one outstanding retrieve per recipient, or the drain loop
        # would pile requests onto an already-loaded mailbox node.
        self._retrieving: set = set()
        # Per-group progress counters mirroring the global stats; the
        # drain/termination conditions read *these* so a gateway only
        # ever waits on its own group (with one group they equal the
        # global counters exactly).
        self._g_submitted = [0] * self._groups
        self._g_absorbed = [0] * self._groups
        self._g_retrieved = [0] * self._groups
        self._g_delivered = [0] * self._groups
        self._sending_done = [0] * self._groups
        self._drained = [0] * self._groups
        gateway_nodes = [n for n in range(num_nodes)
                         if not self._is_mailbox_node(n)]
        self._gateway_ordinal = {n: i for i, n
                                 in enumerate(gateway_nodes)}
        #: (client, recipient) -> delivered seqs, in delivery order.
        #: Test instrumentation only (unbounded); off by default so
        #: sweep-scale runs stay O(active flows + queued mail).
        self.retrieved_log: Dict[Tuple[int, int], List[int]] = {}

    # ------------------------------------------------------------------
    # Locality placement
    # ------------------------------------------------------------------
    def _is_mailbox_node(self, node: int) -> bool:
        if self.locality_groups:
            return node % self._group_size < self._mb_per_group
        return node < self.mailbox_nodes

    def _node_group(self, node: int) -> int:
        return node // self._group_size if self.locality_groups else 0

    def _home_node(self, recipient: int) -> int:
        """Group-local home: recipient ``r`` lives in group ``r % G``
        on that group's ``(r // G) % mb_per_group``-th mailbox node."""
        group = recipient % self.locality_groups
        return (group * self._group_size
                + (recipient // self.locality_groups)
                % self._mb_per_group)

    def _transport_for(self, node: int) -> ReliableTransport:
        return self._transports[self._node_group(node)]

    def traffic_locality_groups(self):
        if not self.locality_groups:
            return None
        size = self._group_size
        return [tuple(range(g * size, (g + 1) * size))
                for g in range(self.locality_groups)]

    # ------------------------------------------------------------------
    # Open-loop arrival shaping
    # ------------------------------------------------------------------
    def _envelope_milli(self, now: int) -> int:
        """Diurnal rate multiplier in milli-units (1000 = nominal).

        An integer triangle wave between ``1000 - amp`` (trough) and
        ``1000 + amp`` (peak) over ``diurnal_period`` cycles — the
        burst envelope, without floating trig.
        """
        period = self.diurnal_period
        amp = self.diurnal_amplitude_milli
        if period <= 1 or amp <= 0:
            return 1_000
        half = period // 2
        pos = now % period
        rise = pos if pos <= half else period - pos
        return 1_000 - amp + (2 * amp * rise) // half

    def _gap(self, rng: DeterministicRng, now: int) -> int:
        base = rng.uniform_interval(self.mean_gap)
        return base * 1_000 // self._envelope_milli(now)

    # ------------------------------------------------------------------
    # Transport delivery callback (runs inside receiving handlers)
    # ------------------------------------------------------------------
    def _deliver(self, rt: UdmRuntime, src: int,
                 payload: Tuple[Any, ...]) -> Generator:
        kind = payload[0]
        if kind == "submit":
            yield from self._on_submit(rt, payload)
        elif kind == "retrieve":
            yield from self._on_retrieve(rt, payload)
        elif kind == "deliver":
            self._on_deliver(rt, payload)
        elif kind == "done":
            yield from self._on_done(rt, src, payload)
        else:  # pragma: no cover - protocol bug guard
            raise ValueError(f"unknown mailbox message {kind!r}")

    def _on_submit(self, rt: UdmRuntime,
                   payload: Tuple[Any, ...]) -> Generator:
        _, client, recipient, seq = payload
        yield Compute(self.handler_cycles)
        self.stats.absorbed += 1
        self._g_absorbed[self._node_group(rt.node_index)] += 1
        self.service.accept(rt.node_index, client, recipient, seq,
                            rt.machine.engine.now)

    def _on_retrieve(self, rt: UdmRuntime,
                     payload: Tuple[Any, ...]) -> Generator:
        _, requester, recipient = payload
        yield Compute(40)
        node = rt.node_index
        group = self._node_group(node)
        transport = self._transports[group]
        queue = self.service.queues.get(recipient)
        # Page the inbox: a bounded batch per reconnect keeps one hot
        # recipient from occupying the handler past the atomicity
        # window every time. The requester reconnects again while its
        # queue is non-empty, so leftovers drain on later rounds.
        batch = self.retrieve_batch
        while queue and batch:
            batch -= 1
            client, seq, enq = queue.popleft()
            self.service.occupancy[node] -= 1
            self.stats.retrieved += 1
            self._g_retrieved[group] += 1
            yield from transport.send(
                rt, requester, ("deliver", recipient, client, seq, enq))
        yield from transport.send(
            rt, requester, ("done", recipient, self.service.epoch[node]))

    def _on_deliver(self, rt: UdmRuntime,
                    payload: Tuple[Any, ...]) -> None:
        _, recipient, client, seq, enq = payload
        self.stats.note_latency(rt.machine.engine.now - enq)
        self.stats.delivered += 1
        self._g_delivered[self._node_group(rt.node_index)] += 1
        if self.record_deliveries:
            self.retrieved_log.setdefault((client, recipient),
                                          []).append(seq)

    def _on_done(self, rt: UdmRuntime, src: int,
                 payload: Tuple[Any, ...]) -> Generator:
        _, recipient, epoch = payload
        self._retrieving.discard(recipient)
        key = (rt.node_index, src)
        if epoch <= self._epoch_seen.get(key, 0):
            return
        self._epoch_seen[key] = epoch
        # The mailbox node crashed since our last reconnect: replay
        # everything in the bounded log that was homed there. Replays
        # whose mail survived are absorbed by the dedup cache.
        group = self._node_group(rt.node_index)
        transport = self._transports[group]
        for home, client, recipient, seq in list(
                self._replay_logs.get(rt.node_index, ())):
            if home != src:
                continue
            self.stats.replays += 1
            self.stats.submitted += 1
            self._g_submitted[group] += 1
            yield from transport.send(
                rt, home, ("submit", client, recipient, seq))

    # ------------------------------------------------------------------
    # Flow-table aggregation (the O(active-flows) bound)
    # ------------------------------------------------------------------
    def _note_flow(self, gateway_node: int, client: int) -> None:
        table = self._flow_tables[gateway_node]
        if client in table:
            table[client] += 1
            table.move_to_end(client)
        else:
            table[client] = 1
            self.stats.flows_created += 1
            while len(table) > self._flow_cap:
                table.popitem(last=False)
                self.stats.flows_evicted += 1
        active = sum(len(t) for t in self._flow_tables.values())
        if active > self.stats.active_flows_peak:
            self.stats.active_flows_peak = active

    # ------------------------------------------------------------------
    # Mains
    # ------------------------------------------------------------------
    def main(self, rt: UdmRuntime, node_index: int) -> Generator:
        if self._is_mailbox_node(node_index):
            yield from self._mailbox_main(rt, node_index)
        else:
            yield from self._gateway_main(rt, node_index)

    def _mailbox_main(self, rt: UdmRuntime,
                      node_index: int) -> Generator:
        # Every mailbox node registers (register_mailbox dedupes), so a
        # shard replica that owns no node 0 still exposes the service
        # to metric collection.
        rt.machine.register_mailbox(self.service)
        group = self._node_group(node_index)
        # All service work happens in handlers; the main thread just
        # keeps the node resident until every gateway in its own
        # locality group has drained.
        while self._drained[group] < self._gateways_per_group:
            yield Compute(2_000)

    def _gateway_main(self, rt: UdmRuntime,
                      node_index: int) -> Generator:
        gw = self._gateway_ordinal[node_index]
        group = self._node_group(node_index)
        transport = self._transports[group]
        rng = DeterministicRng(self.seed, f"mailbox/gateway/{gw}")
        self._flow_tables[node_index] = OrderedDict()
        replay_log: Deque[Tuple[int, int, int, int]] = deque(
            maxlen=self.replay_window)
        self._replay_logs[node_index] = replay_log
        # This gateway's shards of the client and recipient spaces.
        clients_per_gw = max(1, self.clients // self.num_gateways)
        if self.locality_groups:
            # Group ``g`` owns recipients ``r % G == g``; its gateways
            # split those round-robin by in-group ordinal.
            per_group = self._gateways_per_group
            local_gw = gw - group * per_group
            own = [r for r in range(self.recipients)
                   if r % self.locality_groups == group
                   and (r // self.locality_groups) % per_group
                   == local_gw]
        else:
            own = [r for r in range(self.recipients)
                   if r % self.num_gateways == gw]
        # Seeded reconnect schedule: after which submission each owned
        # recipient comes online and drains its mailbox.
        checkpoints: Dict[int, List[int]] = {}
        for recipient in own:
            for _ in range(self.reconnects):
                at = rng.uniform_int(1, self.messages_per_gateway)
                checkpoints.setdefault(at, []).append(recipient)

        seq = 0
        for sent in range(self.messages_per_gateway):
            for recipient in checkpoints.pop(sent, ()):
                if recipient in self._retrieving:
                    continue
                self._retrieving.add(recipient)
                self.stats.reconnects += 1
                yield from transport.send(
                    rt, self.service.home(recipient),
                    ("retrieve", node_index, recipient))
            gap = self._gap(rng, rt.machine.engine.now)
            if gap:
                yield Compute(gap)
            client = (heavy_tail_rank(rng, clients_per_gw)
                      * self.num_gateways + gw)
            if self.locality_groups:
                recipient = (group + self.locality_groups
                             * heavy_tail_rank(
                                 rng,
                                 self.recipients
                                 // self.locality_groups))
            else:
                recipient = heavy_tail_rank(rng, self.recipients)
            home = self.service.home(recipient)
            self._note_flow(node_index, client)
            self.stats.submitted += 1
            self._g_submitted[group] += 1
            yield from transport.send(
                rt, home, ("submit", client, recipient, seq))
            replay_log.append((home, client, recipient, seq))
            if self.dup_rate and rng.random() < self.dup_rate:
                # An impatient client double-sends; same seq, so the
                # mailbox's dedup cache must absorb it.
                self.stats.client_duplicates += 1
                self.stats.submitted += 1
                self._g_submitted[group] += 1
                yield from transport.send(
                    rt, home, ("submit", client, recipient, seq))
            seq += 1
        self._sending_done[group] += 1

        # Final drain: reconnect until the whole workload quiesces.
        # Bounded by rounds *without progress*, not total rounds — a
        # buffered-mode grind can take a while but keeps moving, while
        # planned transport give-ups under extreme fault plans stop all
        # progress and must not wedge the run.
        stats = self.stats
        idle_rounds = 0
        last_progress = None
        # The idle window must out-wait the longest *planned* stall:
        # an overflow suspension freezes the whole job for
        # suspend_duration cycles while our retrieves sit in flight,
        # and giving up inside that window strands queued mail.
        round_cycles = 4_000
        overflow = getattr(rt.machine, "overflow", None)
        suspend = (overflow.policy.suspend_duration
                   if overflow is not None else 0)
        patience = max(100, suspend // round_cycles + 100)
        while idle_rounds < patience:
            if (self._sending_done[group] == self._gateways_per_group
                    and self._g_absorbed[group]
                    == self._g_submitted[group]
                    and self._g_delivered[group]
                    == self._g_retrieved[group]
                    and not any(self.service.queues.get(r)
                                for r in own)):
                break
            # Transport counters count as liveness too: a retry storm
            # is still moving (bounded by max_retries per message),
            # and acks_sent ticks while the receiver grinds through a
            # deep software buffer of duplicate copies — app-level
            # counters alone would read that grind as a wedge. Both
            # are bounded, so planned give-ups still terminate us.
            # All of these are group-local (one group: the globals),
            # so a gateway never waits on another group's traffic.
            progress = (self._g_absorbed[group],
                        self._g_retrieved[group],
                        self._g_delivered[group],
                        transport.retransmissions,
                        transport.acks_sent)
            if progress == last_progress:
                idle_rounds += 1
            else:
                idle_rounds = 0
                last_progress = progress
            for recipient in own:
                if (self.service.queues.get(recipient)
                        and recipient not in self._retrieving):
                    self._retrieving.add(recipient)
                    stats.reconnects += 1
                    yield from transport.send(
                        rt, self.service.home(recipient),
                        ("retrieve", node_index, recipient))
            yield Compute(round_cycles)
        self._drained[group] += 1

    def describe(self) -> str:
        locality = (f", locality_groups={self.locality_groups}"
                    if self.locality_groups else "")
        return (
            f"mailbox: {self.clients} clients over {self.num_gateways} "
            f"gateways -> {self.mailbox_nodes} mailbox nodes, "
            f"{self.messages_per_gateway} msgs/gateway, "
            f"mean_gap={self.mean_gap}{locality}"
        )


__all__ = [
    "MailboxApplication",
    "MailboxService",
    "MailboxStats",
    "RETRIEVAL_LATENCY_EDGES",
    "heavy_tail_rank",
]
