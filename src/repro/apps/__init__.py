"""Applications used in the paper's evaluation (Table 6 and Section 5.2).

* CRL-based (software shared memory over UDM): :mod:`repro.apps.barnes`,
  :mod:`repro.apps.water`, :mod:`repro.apps.lu`;
* native UDM: :mod:`repro.apps.barrier` (synchronizes constantly),
  :mod:`repro.apps.enum_puzzle` (many unacknowledged messages, rare
  synchronization);
* synthetic: :mod:`repro.apps.synth` (synth-N producer/consumer of
  Section 5.2) and :mod:`repro.apps.null_app` (the multiprogramming
  partner).
"""

from repro.apps.base import Application, CollectiveOps
from repro.apps.mailbox import MailboxApplication
from repro.apps.null_app import NullApplication
from repro.apps.barrier import BarrierApplication
from repro.apps.enum_puzzle import EnumApplication
from repro.apps.synth import SynthApplication
from repro.apps.barnes import BarnesApplication
from repro.apps.water import WaterApplication
from repro.apps.lu import LuApplication

__all__ = [
    "Application",
    "CollectiveOps",
    "MailboxApplication",
    "NullApplication",
    "BarrierApplication",
    "EnumApplication",
    "SynthApplication",
    "BarnesApplication",
    "WaterApplication",
    "LuApplication",
]
