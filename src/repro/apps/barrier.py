"""The ``barrier`` synthetic application (Table 6).

"At the other extreme, a synthetic application, barrier, included for
illustration, consists entirely of barriers and thus synchronizes
constantly." The paper ran 10,000 barriers on eight nodes (240,177
messages, T_betw 615, T_hand 149).

Because it only makes progress when all processes are simultaneously
scheduled, its multiprogrammed slowdown is "almost exactly the inverse
of the skew" — the Figure 8 anchor case.
"""

from __future__ import annotations

from typing import Generator

from repro.apps.base import Application, CollectiveOps
from repro.machine.processor import Compute
from repro.core.udm import UdmRuntime


class BarrierApplication(Application):
    """``iterations`` back-to-back barriers with a little local work."""

    name = "barrier"

    def __init__(self, iterations: int = 1000, num_nodes: int = 8,
                 work_between: int = 100) -> None:
        if iterations < 1:
            raise ValueError("need at least one barrier")
        self.iterations = iterations
        self.num_nodes = num_nodes
        self.work_between = work_between
        self.collectives = CollectiveOps(num_nodes)
        self.completed = [0] * num_nodes

    def main(self, rt: UdmRuntime, node_index: int) -> Generator:
        for iteration in range(self.iterations):
            yield Compute(self.work_between)
            total = yield from self.collectives.barrier(rt, contribute=1)
            if total != self.num_nodes:
                raise AssertionError(
                    f"barrier {iteration} released with {total} arrivals"
                )
            self.completed[node_index] = iteration + 1

    def describe(self) -> str:
        return f"{self.iterations} barriers on {self.num_nodes} nodes"
