"""Molecular-dynamics application on CRL (Table 6's ``Water``).

Structured like the SPLASH Water kernel: molecules are partitioned
across nodes, one CRL region per node holding its molecules' state
(position and velocity). Each timestep every node reads every other
node's region to accumulate short-range pair forces against its own
molecules, then updates its own region (leapfrog integration), with
barriers separating the read and write phases.

Forces use a truncated soft Lennard-Jones in a periodic box. The
computation is real — tests check momentum conservation and box
containment — but the data set is scaled down from the paper's 512
molecules (documented in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Generator, List, Tuple

from repro.apps.base import Application, CollectiveOps
from repro.machine.processor import Compute
from repro.core.udm import UdmRuntime
from repro.crl.api import Crl
from repro.sim.random import DeterministicRng

#: Words per molecule in a region: x, y, z, vx, vy, vz.
WORDS_PER_MOLECULE = 6


class WaterApplication(Application):
    """Particle dynamics with per-node molecule regions over CRL."""

    name = "water"

    def __init__(self, molecules: int = 64, num_nodes: int = 8,
                 iterations: int = 3, box: float = 10.0,
                 cutoff: float = 3.0, dt: float = 0.002,
                 seed: int = 11, cycles_per_pair: int = 40) -> None:
        if molecules % num_nodes != 0:
            raise ValueError("molecules must divide evenly across nodes")
        self.molecules = molecules
        self.num_nodes = num_nodes
        self.iterations = iterations
        self.box = box
        self.cutoff = cutoff
        self.dt = dt
        self.cycles_per_pair = cycles_per_pair
        self.per_node = molecules // num_nodes
        self.crl = Crl(num_nodes)
        self.collectives = CollectiveOps(num_nodes)
        self._init_molecules(seed)

    def _init_molecules(self, seed: int) -> None:
        rng = DeterministicRng(seed, "water-init")
        for node in range(self.num_nodes):
            data: List[float] = []
            for _ in range(self.per_node):
                data.extend([
                    rng.random() * self.box,
                    rng.random() * self.box,
                    rng.random() * self.box,
                    (rng.random() - 0.5) * 0.1,
                    (rng.random() - 0.5) * 0.1,
                    (rng.random() - 0.5) * 0.1,
                ])
            self.crl.create(node, home=node,
                            size_words=self.per_node * WORDS_PER_MOLECULE,
                            init=data)

    # ------------------------------------------------------------------
    # Physics
    # ------------------------------------------------------------------
    def _minimum_image(self, d: float) -> float:
        box = self.box
        if d > box / 2:
            return d - box
        if d < -box / 2:
            return d + box
        return d

    def _pair_force(self, pi: Tuple[float, float, float],
                    pj: Tuple[float, float, float]) -> Tuple[float, float, float]:
        """Soft truncated LJ force on molecule i from molecule j."""
        dx = self._minimum_image(pi[0] - pj[0])
        dy = self._minimum_image(pi[1] - pj[1])
        dz = self._minimum_image(pi[2] - pj[2])
        r2 = dx * dx + dy * dy + dz * dz
        if r2 >= self.cutoff * self.cutoff or r2 == 0.0:
            return (0.0, 0.0, 0.0)
        r2 = max(r2, 0.25)  # softening avoids numerical blowups
        inv2 = 1.0 / r2
        inv6 = inv2 * inv2 * inv2
        scale = 24.0 * inv6 * (2.0 * inv6 - 1.0) * inv2
        return (scale * dx, scale * dy, scale * dz)

    @staticmethod
    def _positions(data: List[float]) -> List[Tuple[float, float, float]]:
        return [
            (data[i], data[i + 1], data[i + 2])
            for i in range(0, len(data), WORDS_PER_MOLECULE)
        ]

    # ------------------------------------------------------------------
    # Main
    # ------------------------------------------------------------------
    def main(self, rt: UdmRuntime, node_index: int) -> Generator:
        crl = self.crl
        for _step in range(self.iterations):
            # Phase 1: gather all positions (reads other regions).
            own = yield from crl.read_region(rt, node_index)
            my_pos = self._positions(own)
            forces = [(0.0, 0.0, 0.0)] * self.per_node
            pair_count = 0
            for other in range(self.num_nodes):
                if other == node_index:
                    others_pos = my_pos
                else:
                    snapshot = yield from crl.read_region(rt, other)
                    others_pos = self._positions(snapshot)
                for i, pi in enumerate(my_pos):
                    fx, fy, fz = forces[i]
                    for j, pj in enumerate(others_pos):
                        if other == node_index and i == j:
                            continue
                        dfx, dfy, dfz = self._pair_force(pi, pj)
                        fx += dfx
                        fy += dfy
                        fz += dfz
                        pair_count += 1
                    forces[i] = (fx, fy, fz)
                yield Compute(self.cycles_per_pair * self.per_node
                              * len(others_pos))
            yield from self.collectives.barrier(rt)

            # Phase 2: integrate own molecules.
            yield from crl.start_write(rt, node_index)
            data = crl.data(rt, node_index)
            dt = self.dt
            for i in range(self.per_node):
                base = i * WORDS_PER_MOLECULE
                fx, fy, fz = forces[i]
                data[base + 3] += fx * dt
                data[base + 4] += fy * dt
                data[base + 5] += fz * dt
                data[base + 0] = (data[base + 0] + data[base + 3] * dt) \
                    % self.box
                data[base + 1] = (data[base + 1] + data[base + 4] * dt) \
                    % self.box
                data[base + 2] = (data[base + 2] + data[base + 5] * dt) \
                    % self.box
            yield from crl.end_write(rt, node_index)
            yield Compute(30 * self.per_node)
            yield from self.collectives.barrier(rt)

    # ------------------------------------------------------------------
    # Verification helpers
    # ------------------------------------------------------------------
    def total_momentum(self) -> Tuple[float, float, float]:
        px = py = pz = 0.0
        for node in range(self.num_nodes):
            data = self.crl.protocol.home_data[node]
            for i in range(0, len(data), WORDS_PER_MOLECULE):
                px += data[i + 3]
                py += data[i + 4]
                pz += data[i + 5]
        return px, py, pz

    def all_positions(self) -> List[Tuple[float, float, float]]:
        out = []
        for node in range(self.num_nodes):
            data = self.crl.protocol.home_data[node]
            out.extend(self._positions(data))
        return out

    def describe(self) -> str:
        return (
            f"{self.molecules} molecules, {self.iterations} steps, "
            f"{self.num_nodes} nodes"
        )
