"""The "null" multiprogramming partner (Section 5.1).

"We use a null application rather than two copies of a real application
because the experiment is more easily controlled." It computes forever
and never communicates; its only role is to occupy the other timeslice
so the measured application runs multiprogrammed.
"""

from __future__ import annotations

from typing import Generator

from repro.apps.base import Application
from repro.machine.processor import Compute
from repro.core.udm import UdmRuntime


class NullApplication(Application):
    """Pure computation; never sends or receives a message."""

    name = "null"
    communicates = False

    def __init__(self, chunk_cycles: int = 10_000) -> None:
        if chunk_cycles <= 0:
            raise ValueError("chunk size must be positive")
        self.chunk_cycles = chunk_cycles

    def main(self, rt: UdmRuntime, node_index: int) -> Generator:
        while True:
            yield Compute(self.chunk_cycles)

    def describe(self) -> str:
        return "null application (infinite compute loop)"
