"""Barnes-Hut N-body simulation on CRL (Table 6's ``Barnes``).

A 2-D Barnes-Hut gravity code with the SPLASH communication structure
mapped onto CRL regions:

* one body region per node (positions, velocities, masses of its share
  of the bodies), homed at that node;
* one tree region (homed at node 0) holding the serialized quadtree.

Each iteration: node 0 gathers every body region (CRL reads), builds
the quadtree, and publishes it through the tree region (CRL write); a
barrier; then every node reads the tree — a large, fragmented data
transfer, exactly the "fewer larger data packets" component of CRL
traffic — computes forces for its own bodies with the θ-criterion
traversal, integrates, and writes its body region back; final barrier.

The tree and traversal are real; tests validate Barnes-Hut forces
against the direct O(n²) sum. Data sets are scaled from the paper's
2048 bodies (see EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from typing import Generator, List, Optional, Tuple

from repro.apps.base import Application, CollectiveOps
from repro.machine.processor import Compute
from repro.core.udm import UdmRuntime
from repro.crl.api import Crl
from repro.sim.random import DeterministicRng

#: Words per body in a body region: x, y, vx, vy, mass.
WORDS_PER_BODY = 5
#: Words per serialized tree node:
#: kind, cmx, cmy, mass, half, child0, child1, child2, child3.
WORDS_PER_TREE_NODE = 9

_INTERNAL = 0.0
_LEAF = 1.0
_EMPTY = -1.0


class QuadTree:
    """A 2-D Barnes-Hut quadtree built over point masses."""

    def __init__(self, cx: float, cy: float, half: float) -> None:
        self.cx = cx
        self.cy = cy
        self.half = half
        self.kind = _EMPTY
        self.mass = 0.0
        self.cmx = 0.0
        self.cmy = 0.0
        self.children: List[Optional["QuadTree"]] = [None] * 4
        self._body: Optional[Tuple[float, float, float]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def insert(self, x: float, y: float, mass: float) -> None:
        if self.kind == _EMPTY:
            self.kind = _LEAF
            self._body = (x, y, mass)
            return
        if self.kind == _LEAF:
            old = self._body
            self._body = None
            self.kind = _INTERNAL
            self._insert_child(*old)
        self._insert_child(x, y, mass)

    def _insert_child(self, x: float, y: float, mass: float) -> None:
        quadrant = (1 if x >= self.cx else 0) + (2 if y >= self.cy else 0)
        child = self.children[quadrant]
        if child is None:
            h = self.half / 2
            ccx = self.cx + (h if quadrant & 1 else -h)
            ccy = self.cy + (h if quadrant & 2 else -h)
            child = QuadTree(ccx, ccy, h)
            self.children[quadrant] = child
        if child.half < 1e-9:
            # Degenerate coincident points: merge into the leaf.
            if child.kind == _LEAF:
                bx, by, bm = child._body
                child._body = (bx, by, bm + mass)
                return
        child.insert(x, y, mass)

    def summarize(self) -> None:
        """Compute mass and center of mass bottom-up."""
        if self.kind == _LEAF:
            self.cmx, self.cmy, self.mass = self._body
            return
        if self.kind == _EMPTY:
            return
        mass = wx = wy = 0.0
        for child in self.children:
            if child is None:
                continue
            child.summarize()
            mass += child.mass
            wx += child.cmx * child.mass
            wy += child.cmy * child.mass
        self.mass = mass
        if mass > 0:
            self.cmx = wx / mass
            self.cmy = wy / mass

    def node_count(self) -> int:
        if self.kind == _EMPTY:
            return 0
        total = 1
        if self.kind == _INTERNAL:
            for child in self.children:
                if child is not None:
                    total += child.node_count()
        return total

    # ------------------------------------------------------------------
    # Serialization into a flat word list (the tree region format)
    # ------------------------------------------------------------------
    def serialize(self, out: List[float]) -> int:
        """Append this subtree; returns this node's index."""
        index = len(out) // WORDS_PER_TREE_NODE
        out.extend([0.0] * WORDS_PER_TREE_NODE)
        base = index * WORDS_PER_TREE_NODE
        out[base + 0] = self.kind
        out[base + 1] = self.cmx
        out[base + 2] = self.cmy
        out[base + 3] = self.mass
        out[base + 4] = self.half
        child_indices = [-1.0] * 4
        if self.kind == _INTERNAL:
            for q, child in enumerate(self.children):
                if child is not None and child.kind != _EMPTY:
                    child_indices[q] = float(child.serialize(out))
        out[base + 5:base + 9] = child_indices
        return index


def traverse_force(tree_words: List[float], index: int, x: float, y: float,
                   theta: float, softening: float) -> Tuple[float, float, int]:
    """Barnes-Hut force at (x, y) from the serialized subtree ``index``.

    Returns (fx, fy, nodes_visited); visit counts drive the simulated
    compute cost so the charged cycles track the real work.
    """
    base = index * WORDS_PER_TREE_NODE
    kind = tree_words[base]
    cmx = tree_words[base + 1]
    cmy = tree_words[base + 2]
    mass = tree_words[base + 3]
    half = tree_words[base + 4]
    dx = cmx - x
    dy = cmy - y
    dist2 = dx * dx + dy * dy + softening
    dist = math.sqrt(dist2)
    if kind == _LEAF or (2 * half) / dist < theta:
        if mass == 0.0 or dist2 <= softening:
            return (0.0, 0.0, 1)
        scale = mass / (dist2 * dist)
        return (dx * scale, dy * scale, 1)
    fx = fy = 0.0
    visited = 1
    for q in range(4):
        child = int(tree_words[base + 5 + q])
        if child < 0:
            continue
        cfx, cfy, cv = traverse_force(tree_words, child, x, y, theta,
                                      softening)
        fx += cfx
        fy += cfy
        visited += cv
    return (fx, fy, visited)


class BarnesApplication(Application):
    """Barnes-Hut over CRL with a published (region-resident) tree."""

    name = "barnes"

    TREE_RID_OFFSET = 1000

    def __init__(self, bodies: int = 64, num_nodes: int = 8,
                 iterations: int = 3, theta: float = 0.7,
                 dt: float = 0.01, seed: int = 13,
                 cycles_per_visit: int = 12,
                 cycles_per_insert: int = 25) -> None:
        if bodies % num_nodes != 0:
            raise ValueError("bodies must divide evenly across nodes")
        self.bodies = bodies
        self.num_nodes = num_nodes
        self.iterations = iterations
        self.theta = theta
        self.dt = dt
        self.softening = 0.05
        self.cycles_per_visit = cycles_per_visit
        self.cycles_per_insert = cycles_per_insert
        self.per_node = bodies // num_nodes
        self.box_half = 12.0
        self.crl = Crl(num_nodes)
        self.collectives = CollectiveOps(num_nodes)
        #: Serialized-tree capacity: worst-case quadtree fanout bound.
        self.tree_words = (4 * bodies + 8) * WORDS_PER_TREE_NODE + 1
        #: The tree is published through several medium-sized regions
        #: rather than one huge one, as CRL applications shard large
        #: shared structures: each grant handler then streams a bounded
        #: number of fragments and never outlives the atomicity timer.
        self.tree_chunk_words = 320
        self.tree_chunks = (
            (self.tree_words + self.tree_chunk_words - 1)
            // self.tree_chunk_words
        )
        self._init_bodies(seed)
        for chunk in range(self.tree_chunks):
            self.crl.create(self.TREE_RID_OFFSET + chunk, home=0,
                            size_words=self.tree_chunk_words)

    def _init_bodies(self, seed: int) -> None:
        rng = DeterministicRng(seed, "barnes-init")
        for node in range(self.num_nodes):
            data: List[float] = []
            for _ in range(self.per_node):
                radius = rng.random() * self.box_half * 0.6
                angle = rng.random() * 2 * math.pi
                data.extend([
                    radius * math.cos(angle),
                    radius * math.sin(angle),
                    (rng.random() - 0.5) * 0.2,
                    (rng.random() - 0.5) * 0.2,
                    0.5 + rng.random(),
                ])
            self.crl.create(node, home=node,
                            size_words=self.per_node * WORDS_PER_BODY,
                            init=data)

    # ------------------------------------------------------------------
    # Tree building (runs on node 0)
    # ------------------------------------------------------------------
    def build_tree(self, all_bodies: List[Tuple[float, float, float]]
                   ) -> List[float]:
        root = QuadTree(0.0, 0.0, self.box_half * 2)
        for x, y, mass in all_bodies:
            root.insert(x, y, mass)
        root.summarize()
        words: List[float] = []
        root.serialize(words)
        if len(words) + 1 > self.tree_words:
            raise RuntimeError("serialized tree exceeds the tree region")
        return words

    # ------------------------------------------------------------------
    # Main
    # ------------------------------------------------------------------
    # -- tree publication through the chunked regions -------------------
    def _publish_tree(self, rt: UdmRuntime,
                      words: List[float]) -> Generator:
        """Write the serialized tree (length-prefixed) into the chunk
        regions; only chunks the tree actually covers are written."""
        flat = [float(len(words))] + words
        for chunk in range(self.tree_chunks):
            base = chunk * self.tree_chunk_words
            if base >= len(flat):
                break
            rid = self.TREE_RID_OFFSET + chunk
            piece = flat[base:base + self.tree_chunk_words]
            yield from self.crl.start_write(rt, rid)
            data = self.crl.data(rt, rid)
            data[:len(piece)] = piece
            yield from self.crl.end_write(rt, rid)

    def _fetch_tree(self, rt: UdmRuntime) -> Generator:
        """Read the chunk regions back into one flat serialized tree."""
        first = yield from self.crl.read_region(rt, self.TREE_RID_OFFSET)
        used = int(first[0])
        flat = list(first)
        chunk = 1
        while len(flat) < used + 1:
            rid = self.TREE_RID_OFFSET + chunk
            piece = yield from self.crl.read_region(rt, rid)
            flat.extend(piece)
            chunk += 1
        return flat[1:1 + used]

    def main(self, rt: UdmRuntime, node_index: int) -> Generator:
        crl = self.crl
        for _step in range(self.iterations):
            if node_index == 0:
                gathered: List[Tuple[float, float, float]] = []
                for node in range(self.num_nodes):
                    snapshot = yield from crl.read_region(rt, node)
                    for i in range(0, len(snapshot), WORDS_PER_BODY):
                        gathered.append((snapshot[i], snapshot[i + 1],
                                         snapshot[i + 4]))
                words = self.build_tree(gathered)
                yield Compute(self.cycles_per_insert * len(gathered))
                yield from self._publish_tree(rt, words)
            yield from self.collectives.barrier(rt)

            # Force phase: read the published tree, update own bodies.
            tree = yield from self._fetch_tree(rt)
            yield from crl.start_write(rt, node_index)
            data = crl.data(rt, node_index)
            visits = 0
            for i in range(self.per_node):
                base = i * WORDS_PER_BODY
                fx, fy, visited = traverse_force(
                    tree, 0, data[base], data[base + 1],
                    self.theta, self.softening,
                )
                visits += visited
                data[base + 2] += fx * self.dt
                data[base + 3] += fy * self.dt
                data[base + 0] += data[base + 2] * self.dt
                data[base + 1] += data[base + 3] * self.dt
            yield from crl.end_write(rt, node_index)
            yield Compute(self.cycles_per_visit * visits)
            yield from self.collectives.barrier(rt)

    # ------------------------------------------------------------------
    # Verification helpers
    # ------------------------------------------------------------------
    def all_bodies(self) -> List[Tuple[float, float, float, float, float]]:
        out = []
        for node in range(self.num_nodes):
            data = self.crl.protocol.home_data[node]
            for i in range(0, len(data), WORDS_PER_BODY):
                out.append(tuple(data[i:i + WORDS_PER_BODY]))
        return out

    def describe(self) -> str:
        return (
            f"{self.bodies} bodies, {self.iterations} iterations, "
            f"theta={self.theta}, {self.num_nodes} nodes"
        )
