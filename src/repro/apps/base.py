"""Application interface and shared helpers.

An application provides one ``main`` generator per node; the machine
wraps each in a user frame and the gang scheduler runs them. All
inter-node communication goes through the UDM runtime — application
object state shared between per-node coroutines is only used for
verification (checking results) and configuration, never as a covert
communication channel that would bypass the messaging model.

The module also provides :class:`CollectiveOps`, a small library of
message-based collectives (barrier, reduce) built purely on UDM —
the kind of protocol layer the paper says UDM is "an efficient ...
building block" for.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Generator

from repro.machine.processor import Compute
from repro.core.udm import UdmRuntime


class Application(abc.ABC):
    """Base class for all workloads."""

    #: Job name (also used for the GID label and reports).
    name: str = "app"

    #: False for workloads that never send or receive a message; the
    #: shard coordinator ignores them when deciding whether a partition
    #: admits any cross-shard traffic.
    communicates: bool = True

    @abc.abstractmethod
    def main(self, rt: UdmRuntime, node_index: int) -> Generator:
        """The per-node main thread; a generator coroutine."""

    def traffic_locality_groups(self):
        """Static traffic locality, if the workload can promise one.

        Either None (traffic may touch any node pair — the safe
        default) or an iterable of node-id groups such that every
        message this application ever sends stays within one group.
        The shard coordinator free-runs (no synchronization barriers)
        when all declared groups nest inside single shards.
        """
        return None

    def describe(self) -> str:
        """One-line workload description for reports."""
        return self.name


class CollectiveOps:
    """Barrier and reduction built from UDM messages.

    One instance is shared by all per-node coroutines of a job; the
    shared Python state holds only per-node mailboxes that a real
    implementation would keep in node-local memory. Coordination
    happens through messages: arrivals flow to node 0, which releases
    everyone.
    """

    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = num_nodes
        self._epoch: Dict[int, int] = {n: 0 for n in range(num_nodes)}
        self._arrived: Dict[int, int] = {}
        self._released: Dict[int, int] = {n: 0 for n in range(num_nodes)}
        self._reduce_acc: Dict[int, Any] = {}
        self._reduce_result: Dict[int, Dict[int, Any]] = {
            n: {} for n in range(num_nodes)
        }

    # -- message handlers (run via UDM upcalls or the buffered drain) --
    def _h_arrive(self, rt: UdmRuntime, msg) -> Generator:
        epoch, value = msg.payload
        yield from rt.dispose_current()
        yield Compute(40)
        self._arrived[epoch] = self._arrived.get(epoch, 0) + 1
        acc = self._reduce_acc.get(epoch, 0)
        self._reduce_acc[epoch] = acc + value
        if self._arrived[epoch] == self.num_nodes:
            total = self._reduce_acc.pop(epoch)
            self._arrived.pop(epoch)
            for node in range(self.num_nodes):
                yield from rt.inject(node, self._h_release, (epoch, total))

    def _h_release(self, rt: UdmRuntime, msg) -> Generator:
        epoch, total = msg.payload
        yield from rt.dispose_current()
        yield Compute(25)
        node = rt.node_index
        self._released[node] = max(self._released[node], epoch + 1)
        self._reduce_result[node][epoch] = total

    # -- blocking operations used from main threads ---------------------
    def barrier(self, rt: UdmRuntime, contribute: Any = 0) -> Generator:
        """Block until every node reaches this barrier.

        Returns the sum of every node's ``contribute`` value — a fused
        all-reduce, which is how real barrier libraries amortize their
        traffic.
        """
        node = rt.node_index
        epoch = self._epoch[node]
        self._epoch[node] = epoch + 1
        yield from rt.inject(0, self._h_arrive, (epoch, contribute))
        # Wait for the release; interrupts stay enabled so the release
        # handler can run. Poll the epoch watermark with short sleeps.
        while self._released[node] <= epoch:
            yield Compute(40)
        return self._reduce_result[node].pop(epoch)
