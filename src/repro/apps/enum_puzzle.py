"""The ``enum`` application: triangular peg-solitaire enumeration.

Table 6 describes enum as "a fine-grain, data-parallel application that
exchanges numerous unacknowledged short messages and synchronizes only
infrequently" — the triangle puzzle with 6 pegs per side. It is the
paper's stressor for asynchronous messaging: with little
synchronization, the fraction of buffered messages grows linearly with
schedule skew (Figure 7) while runtime stays nearly flat (Figure 8).

The puzzle: a triangular board with ``side`` rows (row *r* has *r + 1*
holes). All holes start pegged except the apex. A move jumps a peg over
an adjacent peg into an empty hole (along any of the six triangular
directions), removing the jumped peg. A solution leaves exactly one
peg. Each node enumerates the game subtrees rooted at its share of the
first-level moves (a static work partition); every ``updates_per_batch``
expansions it fires an unacknowledged statistics-update message at a
node chosen by hashing the position — the data-parallel update traffic.
One final barrier (with a fused reduction) collects the solution count.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from repro.apps.base import Application, CollectiveOps
from repro.machine.processor import Compute
from repro.core.udm import UdmRuntime

Position = Tuple[int, int]
Board = frozenset


def triangle_cells(side: int) -> List[Position]:
    """All hole coordinates of a triangular board with ``side`` rows."""
    return [(r, c) for r in range(side) for c in range(r + 1)]


#: The six jump directions on a triangular grid: (dr, dc) per step.
_DIRECTIONS = [(-1, -1), (-1, 0), (0, -1), (0, 1), (1, 0), (1, 1)]


def legal_moves(board: Board, cells: frozenset) -> List[Tuple[Position, Position, Position]]:
    """All (source, jumped, destination) jumps available on ``board``."""
    moves = []
    for (r, c) in board:
        for dr, dc in _DIRECTIONS:
            over = (r + dr, c + dc)
            dest = (r + 2 * dr, c + 2 * dc)
            if over in board and dest in cells and dest not in board:
                moves.append(((r, c), over, dest))
    return moves


def apply_move(board: Board,
               move: Tuple[Position, Position, Position]) -> Board:
    src, over, dest = move
    return (board - {src, over}) | {dest}


class EnumApplication(Application):
    """Distributed enumeration of triangle-puzzle solutions."""

    name = "enum"

    def __init__(self, side: int = 5, num_nodes: int = 8,
                 updates_per_batch: int = 8, expansion_cycles: int = 90,
                 max_expansions_per_node: Optional[int] = 20_000) -> None:
        if side < 3:
            raise ValueError("triangle puzzle needs at least 3 rows")
        self.side = side
        self.num_nodes = num_nodes
        self.updates_per_batch = updates_per_batch
        self.expansion_cycles = expansion_cycles
        self.max_expansions_per_node = max_expansions_per_node
        self.collectives = CollectiveOps(num_nodes)
        self.cells = frozenset(triangle_cells(side))
        #: Distributed statistics: per-node counters updated by
        #: unacknowledged messages from peers.
        self.stat_counters: List[int] = [0] * num_nodes
        self.total_solutions: Optional[int] = None
        self.total_expansions: List[int] = [0] * num_nodes

    # ------------------------------------------------------------------
    # The unacknowledged statistics-update handler
    # ------------------------------------------------------------------
    def _h_stat_update(self, rt: UdmRuntime, msg) -> Generator:
        count = msg.payload[0]
        yield from rt.dispose_current()
        yield Compute(150)
        self.stat_counters[rt.node_index] += count

    # ------------------------------------------------------------------
    # Main
    # ------------------------------------------------------------------
    def partition_roots(self, node_index: int) -> List[Board]:
        """Statically partition the search space.

        The top of the game tree is narrow (the apex opening has only
        two first moves), so expand breadth-first until the frontier is
        wide enough to give every node several subtrees, then deal the
        frontier out round-robin. Every node runs the same
        deterministic expansion, so no communication is needed to agree
        on the partition.
        """
        initial = frozenset(self.cells - {(0, 0)})
        frontier: List[Board] = [initial]
        while 0 < len(frontier) < 4 * self.num_nodes:
            next_frontier: List[Board] = []
            for board in frontier:
                moves = legal_moves(board, self.cells)
                next_frontier.extend(apply_move(board, m) for m in moves)
            if not next_frontier:
                break
            frontier = next_frontier
        frontier.sort(key=lambda b: tuple(sorted(b)))
        return [
            board for i, board in enumerate(frontier)
            if i % self.num_nodes == node_index
        ]

    def main(self, rt: UdmRuntime, node_index: int) -> Generator:
        my_roots = self.partition_roots(node_index)
        solutions = 0
        expansions = 0
        pending_updates = 0
        budget = self.max_expansions_per_node
        # Iterative DFS over this node's subtrees.
        stack: List[Board] = list(my_roots)
        while stack:
            if budget is not None and expansions >= budget:
                break
            board = stack.pop()
            expansions += 1
            pending_updates += 1
            moves = legal_moves(board, self.cells)
            if not moves:
                if len(board) == 1:
                    solutions += 1
            else:
                stack.extend(apply_move(board, m) for m in moves)
            yield Compute(self.expansion_cycles)
            if pending_updates >= self.updates_per_batch:
                # Fire-and-forget update to a position-hashed node.
                target = hash(board) % self.num_nodes
                yield from rt.inject(
                    target, self._h_stat_update, (pending_updates,)
                )
                pending_updates = 0
        if pending_updates:
            target = node_index  # final flush goes to the local counter
            yield from rt.inject(
                target, self._h_stat_update, (pending_updates,)
            )
        self.total_expansions[node_index] = expansions
        # The only synchronization: one final fused-reduction barrier.
        total = yield from self.collectives.barrier(rt, contribute=solutions)
        self.total_solutions = total

    def describe(self) -> str:
        return (
            f"triangle puzzle, {self.side} pegs/side, "
            f"{self.num_nodes} nodes"
        )
