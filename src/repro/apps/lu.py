"""Blocked dense LU decomposition on CRL (Table 6's ``LU``).

A port of the SPLASH-2 LU kernel structure: the matrix is split into
B×B blocks scattered over the processors in a 2-D cookie-cutter
pattern; each step factors the diagonal block, solves the perimeter
blocks against it, and updates the interior with block
multiply-subtracts. Blocks live in CRL regions homed at (and updated
by) their owners, so the traffic is owner-writes plus
reader-invalidation pulls — the paper's "operating-system-like" mix of
request-reply control messages and larger fragmented data transfers.

The paper's data set is a 250x250 matrix in 10x10 blocks; ours defaults
to 64x64 in 8x8 blocks (documented scaling, see EXPERIMENTS.md). The
factorization is numerically real: tests verify L·U reassembles the
input matrix.
"""

from __future__ import annotations

from typing import Generator, List

from repro.apps.base import Application, CollectiveOps
from repro.machine.processor import Compute
from repro.core.udm import UdmRuntime
from repro.crl.api import Crl
from repro.sim.random import DeterministicRng


def _block_rid(i: int, j: int, grid: int) -> int:
    return i * grid + j


class LuApplication(Application):
    """SPLASH-2-style blocked LU without pivoting, over CRL."""

    name = "lu"

    def __init__(self, n: int = 64, block: int = 8, num_nodes: int = 8,
                 seed: int = 7, cycles_per_flop: int = 1) -> None:
        if n % block != 0:
            raise ValueError("matrix size must be a multiple of the block")
        self.n = n
        self.block = block
        self.grid = n // block
        self.num_nodes = num_nodes
        self.cycles_per_flop = cycles_per_flop
        self.crl = Crl(num_nodes)
        self.collectives = CollectiveOps(num_nodes)
        # 2-D processor grid for the cookie-cutter distribution.
        self.pr = self._rows_of(num_nodes)
        self.pc = num_nodes // self.pr
        self.original: List[List[float]] = []
        self._init_matrix(seed)

    @staticmethod
    def _rows_of(p: int) -> int:
        rows = 1
        candidate = 1
        while candidate * candidate <= p:
            if p % candidate == 0:
                rows = candidate
            candidate += 1
        return rows

    def owner(self, i: int, j: int) -> int:
        """Owner (and region home) of block (i, j)."""
        return (i % self.pr) * self.pc + (j % self.pc)

    def _init_matrix(self, seed: int) -> None:
        rng = DeterministicRng(seed, "lu-init")
        n, b, grid = self.n, self.block, self.grid
        matrix = [[rng.random() for _ in range(n)] for _ in range(n)]
        for d in range(n):
            matrix[d][d] += n  # diagonal dominance: no pivoting needed
        self.original = [row[:] for row in matrix]
        for bi in range(grid):
            for bj in range(grid):
                data: List[float] = []
                for r in range(b):
                    data.extend(matrix[bi * b + r][bj * b:(bj + 1) * b])
                self.crl.create(
                    _block_rid(bi, bj, grid), home=self.owner(bi, bj),
                    size_words=b * b, init=data,
                )

    # ------------------------------------------------------------------
    # Block kernels (operate on row-major b*b lists)
    # ------------------------------------------------------------------
    def _factor_diag(self, a: List[float]) -> None:
        """In-place LU of the diagonal block (unit lower-triangular L)."""
        b = self.block
        for k in range(b):
            pivot = a[k * b + k]
            for i in range(k + 1, b):
                a[i * b + k] /= pivot
                lik = a[i * b + k]
                row_i = i * b
                row_k = k * b
                for j in range(k + 1, b):
                    a[row_i + j] -= lik * a[row_k + j]

    def _solve_row(self, diag: List[float], a: List[float]) -> None:
        """A_kj := L_kk^{-1} A_kj (forward substitution, unit diagonal)."""
        b = self.block
        for i in range(1, b):
            row_i = i * b
            for k in range(i):
                lik = diag[row_i + k]
                row_k = k * b
                for j in range(b):
                    a[row_i + j] -= lik * a[row_k + j]

    def _solve_col(self, diag: List[float], a: List[float]) -> None:
        """A_ik := A_ik U_kk^{-1} (column back-substitution)."""
        b = self.block
        for j in range(b):
            ujj = diag[j * b + j]
            for i in range(b):
                a[i * b + j] /= ujj
            for j2 in range(j + 1, b):
                ujj2 = diag[j * b + j2]
                for i in range(b):
                    a[i * b + j2] -= a[i * b + j] * ujj2

    def _update(self, a: List[float], left: List[float],
                up: List[float]) -> None:
        """A_ij -= A_ik · A_kj."""
        b = self.block
        for i in range(b):
            row_i = i * b
            for k in range(b):
                lik = left[row_i + k]
                if lik == 0.0:
                    continue
                row_k = k * b
                for j in range(b):
                    a[row_i + j] -= lik * up[row_k + j]

    # ------------------------------------------------------------------
    # Main
    # ------------------------------------------------------------------
    def main(self, rt: UdmRuntime, node_index: int) -> Generator:
        crl = self.crl
        grid, b = self.grid, self.block
        flop = self.cycles_per_flop
        for k in range(grid):
            kk = _block_rid(k, k, grid)
            if self.owner(k, k) == node_index:
                yield from crl.start_write(rt, kk)
                self._factor_diag(crl.data(rt, kk))
                yield from crl.end_write(rt, kk)
                yield Compute(flop * (2 * b ** 3) // 3)
            yield from self.collectives.barrier(rt)

            # Perimeter row and column solves against the diagonal block.
            for j in range(k + 1, grid):
                if self.owner(k, j) == node_index:
                    rid = _block_rid(k, j, grid)
                    yield from crl.start_read(rt, kk)
                    diag = crl.data(rt, kk)
                    yield from crl.start_write(rt, rid)
                    self._solve_row(diag, crl.data(rt, rid))
                    yield from crl.end_write(rt, rid)
                    yield from crl.end_read(rt, kk)
                    yield Compute(flop * b ** 3)
            for i in range(k + 1, grid):
                if self.owner(i, k) == node_index:
                    rid = _block_rid(i, k, grid)
                    yield from crl.start_read(rt, kk)
                    diag = crl.data(rt, kk)
                    yield from crl.start_write(rt, rid)
                    self._solve_col(diag, crl.data(rt, rid))
                    yield from crl.end_write(rt, rid)
                    yield from crl.end_read(rt, kk)
                    yield Compute(flop * b ** 3)
            yield from self.collectives.barrier(rt)

            # Interior update.
            for i in range(k + 1, grid):
                for j in range(k + 1, grid):
                    if self.owner(i, j) != node_index:
                        continue
                    rid = _block_rid(i, j, grid)
                    left = _block_rid(i, k, grid)
                    up = _block_rid(k, j, grid)
                    yield from crl.start_read(rt, left)
                    yield from crl.start_read(rt, up)
                    yield from crl.start_write(rt, rid)
                    self._update(crl.data(rt, rid), crl.data(rt, left),
                                 crl.data(rt, up))
                    yield from crl.end_write(rt, rid)
                    yield from crl.end_read(rt, up)
                    yield from crl.end_read(rt, left)
                    yield Compute(flop * 2 * b ** 3)
            yield from self.collectives.barrier(rt)

    # ------------------------------------------------------------------
    # Verification helpers (used by tests)
    # ------------------------------------------------------------------
    def factored_matrix(self) -> List[List[float]]:
        """Reassemble the factored matrix from the regions' home data."""
        n, b, grid = self.n, self.block, self.grid
        out = [[0.0] * n for _ in range(n)]
        for bi in range(grid):
            for bj in range(grid):
                data = self.crl.protocol.home_data[_block_rid(bi, bj, grid)]
                for r in range(b):
                    row = out[bi * b + r]
                    row[bj * b:(bj + 1) * b] = data[r * b:(r + 1) * b]
        return out

    def reconstruct(self) -> List[List[float]]:
        """Multiply the packed L·U factors back together."""
        n = self.n
        lu = self.factored_matrix()
        out = [[0.0] * n for _ in range(n)]
        for i in range(n):
            for j in range(n):
                acc = 0.0
                for k in range(min(i, j) + 1):
                    lik = lu[i][k] if k < i else 1.0
                    ukj = lu[k][j]
                    acc += lik * ukj
                out[i][j] = acc
        return out

    def describe(self) -> str:
        return (
            f"{self.n}x{self.n} blocked LU, {self.block}x{self.block} "
            f"blocks, {self.num_nodes} nodes"
        )
