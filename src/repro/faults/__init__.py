"""Deterministic fault injection and delivery-invariant checking.

Two-case delivery exists because the network and the receiving process
misbehave; this package makes those misbehaviours *schedulable*:

* :class:`~repro.faults.plan.FaultPlan` — a picklable, JSON-scalar
  description of the perturbations to apply to one run (drops,
  duplication, reordering, latency spikes, NI input-queue stalls,
  forced atomicity-timer expiries, handler page-fault storms);
* :class:`~repro.faults.injector.FaultInjector` — the seeded runtime
  that turns a plan into concrete per-message decisions;
* :class:`~repro.faults.checker.DeliveryInvariantChecker` — hooks the
  tracer and asserts, at end of run, that the system's delivery
  guarantees held (no unplanned loss, no duplicate handling, FIFO,
  legal buffered-mode transitions, bounded buffers);
* :class:`~repro.faults.hog.HogApplication` — an adversarial app that
  floods a victim node which never extracts, driving overflow control.

See ``docs/FAULTS.md`` for the fault taxonomy and the determinism
contract (seed → identical schedule → identical metrics).
"""

from repro.faults.plan import FaultPlan
from repro.faults.injector import FaultInjector
from repro.faults.checker import DeliveryInvariantChecker, Violation
from repro.faults.hog import HogApplication

__all__ = [
    "FaultPlan", "FaultInjector", "DeliveryInvariantChecker",
    "Violation", "HogApplication",
]
