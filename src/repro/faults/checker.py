"""End-of-run delivery-invariant checking.

The :class:`DeliveryInvariantChecker` reconciles three independent
records of one run — the message tracer's per-``msg_id`` lifecycle
records, the live residual state of the machine (NI input queues,
fabric backlogs, software buffers), and (optionally) the
:class:`~repro.protocols.reliable.ReliableTransport` sequence ledgers —
and reports every inconsistency as a :class:`Violation`.

Invariants checked (see docs/FAULTS.md for the full statement):

``unplanned-drop``
    A ``DROP`` trace exists but the run carried no lossy fault plan.
    On a reliable fabric nothing may ever be lost.
``duplicate-handled``
    One simulation ``msg_id`` was freed by the application more than
    once. (Fabric duplicates get *fresh* ids, so each wire copy must
    still be handled at most once; app-level dedup is the transport's
    job and is checked via its ledgers.)
``lost``
    A message reached its destination NI (``DELIVER``) but was neither
    handled nor found resident anywhere at end of run.
``transport-loss`` / ``transport-order``
    A reliable-transport sequence number was sent but neither
    delivered, resident, still outstanding, nor within the declared
    give-up set — or the per-pair delivery log is not the in-order
    prefix exactly-once semantics require. With retries disabled this
    is the *expected* finding for planned fabric losses (the negative
    control).
``fifo``
    On a fault-free (or order-preserving) fabric, two messages of the
    same (src, dst) pair were delivered out of injection order.
``mode-reason`` / ``mode-alternation``
    A buffered-mode transition carried an unknown cause, or
    entries/exits for one (node, job) failed to alternate
    enter → exit → enter …
``buffer-bound``
    A job's software buffer grew past the node's physical frame pool,
    or crossed the overflow policy's suspension threshold without the
    overflow controller ever suspending anything.
``trace-truncated``
    The tracer saturated its record limit, so the trace is incomplete.
    Conservation/FIFO/mode checks are *skipped* (findings derived from
    a truncated trace would be artifacts); buffer-bound and transport
    checks, which read live machine state and transport ledgers rather
    than the trace, still run.

The checker is read-only and usable on *any* run — with or without a
fault plan — which is what makes it an always-on regression net rather
than a fault-injection accessory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.trace import TraceEvent
from repro.core.two_case import TransitionReason
from repro.network.message import KERNEL_GID

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import Machine
    from repro.protocols.reliable import ReliableTransport

#: The one legal cause for *leaving* buffered mode.
EXIT_REASON = "drained"

#: Reasons any delivery discipline may enter buffered mode for.
_BASE_ENTER_REASONS = frozenset({
    TransitionReason.GID_MISMATCH.value,
    TransitionReason.QUANTUM_START.value,
    TransitionReason.ATOMICITY_TIMEOUT.value,
    TransitionReason.PAGE_FAULT.value,
    TransitionReason.QUANTUM_EXPIRY.value,
    TransitionReason.EXPLICIT.value,
})

#: Legal buffered-mode entry reasons, keyed by delivery discipline.
#: Discipline-specific reasons are legal only under their own
#: discipline: a ``zerocopy-fault`` under ``twocase`` (say) would mean
#: a discipline hook fired on a machine that never constructed it.
LEGAL_ENTER_REASONS: Dict[str, frozenset] = {
    "twocase": _BASE_ENTER_REASONS,
    "zerocopy": _BASE_ENTER_REASONS
    | {TransitionReason.ZEROCOPY_FAULT.value},
    "damq": _BASE_ENTER_REASONS
    | {TransitionReason.QUEUE_PRESSURE.value},
}


@dataclass(frozen=True)
class Violation:
    """One broken invariant."""

    code: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.code}] {self.detail}"


class DeliveryInvariantChecker:
    """Audits a finished run against the delivery invariants.

    Create via :meth:`Machine.enable_invariant_checker` *before* the
    run (it needs unbounded tracing), then::

        violations = checker.check(transports=[transport])
        assert not violations, "\\n".join(map(str, violations))
    """

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        if machine.tracer is None:
            raise RuntimeError(
                "invariant checker needs tracing enabled "
                "(use Machine.enable_invariant_checker)"
            )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def check(self, transports: Iterable["ReliableTransport"] = ()
              ) -> List[Violation]:
        violations: List[Violation] = []
        tracer = self.machine.tracer
        if tracer.saturated:
            # The trace is incomplete: conservation/FIFO/mode findings
            # derived from it would be artifacts of the truncation, not
            # of the run. Report the truncation itself instead and keep
            # only the checks that don't read the trace.
            violations.append(Violation(
                "trace-truncated",
                f"tracer saturated at limit={tracer.limit} "
                f"({tracer.dropped} records, {tracer.meta_dropped} "
                f"metadata stamps, {tracer.mode_dropped} mode records "
                "dropped); conservation/FIFO/mode invariants not "
                "evaluated",
            ))
        else:
            resident = self._resident_ids()
            self._check_conservation(violations, resident)
            self._check_fifo(violations)
            self._check_mode_transitions(violations)
        self._check_buffer_bounds(violations)
        for transport in transports:
            self._check_transport(violations, transport)
        return violations

    # ------------------------------------------------------------------
    # Residual machine state
    # ------------------------------------------------------------------
    def _resident_ids(self) -> Set[int]:
        """msg_ids still held somewhere legitimate at end of run."""
        machine = self.machine
        resident: Set[int] = set()
        for node in machine.nodes:
            for message in node.ni._input:
                resident.add(message.msg_id)
            held = node.kernel.in_transit
            if held is not None:
                resident.add(held.msg_id)
        for backlog in machine.fabric._blocked.values():
            for message in backlog:
                resident.add(message.msg_id)
        for job in machine.jobs:
            for state in job.node_states.values():
                for message in state.buffer:
                    resident.add(message.msg_id)
        return resident

    # ------------------------------------------------------------------
    # Invariant 1: conservation — nothing lost, nothing handled twice
    # ------------------------------------------------------------------
    def _check_conservation(self, violations: List[Violation],
                            resident: Set[int]) -> None:
        machine = self.machine
        tracer = machine.tracer
        plan = getattr(machine.config, "faults", None)
        lossy = plan is not None and plan.lossy
        injector = machine.fault_injector
        planned_drops = injector.dropped_ids if injector else frozenset()
        for trace in tracer.traces():
            msg_id = trace.msg_id
            handled = trace.count_of(TraceEvent.HANDLED)
            if handled > 1:
                violations.append(Violation(
                    "duplicate-handled",
                    f"msg {msg_id} handled {handled} times",
                ))
            if trace.was_dropped:
                if not lossy or msg_id not in planned_drops:
                    violations.append(Violation(
                        "unplanned-drop",
                        f"msg {msg_id} dropped without a lossy plan",
                    ))
                continue
            meta = tracer.meta.get(msg_id)
            if meta is not None and meta.gid == KERNEL_GID:
                # OS messages are consumed by the kernel's dispatch
                # table, not freed by an application handler.
                continue
            delivered = trace.time_of(TraceEvent.DELIVER) is not None
            if delivered and handled == 0 and msg_id not in resident:
                violations.append(Violation(
                    "lost",
                    f"msg {msg_id} delivered to the NI but neither "
                    "handled nor resident at end of run",
                ))
            # No DELIVER and no DROP: the run stopped with the message
            # in flight (legal — e.g. an ack racing job completion).

    # ------------------------------------------------------------------
    # Invariant 2: per-(src, dst) FIFO on an order-preserving fabric
    # ------------------------------------------------------------------
    def _check_fifo(self, violations: List[Violation]) -> None:
        machine = self.machine
        plan = getattr(machine.config, "faults", None)
        if plan is not None and (plan.unordered or plan.lossy
                                 or plan.duplicate > 0):
            return  # the plan legitimately perturbs arrival order
        tracer = machine.tracer
        pairs: Dict[Tuple[int, int], List[Tuple[int, int, int]]] = {}
        for trace in tracer.traces():
            meta = tracer.meta.get(trace.msg_id)
            if meta is None:
                continue
            inject = trace.seq_of(TraceEvent.INJECT)
            deliver = trace.seq_of(TraceEvent.DELIVER)
            if inject is None or deliver is None:
                continue
            pairs.setdefault((meta.src, meta.dst), []).append(
                (inject, deliver, trace.msg_id)
            )
        for (src, dst), entries in pairs.items():
            entries.sort()  # injection order
            last_deliver = -1
            for _inject, deliver, msg_id in entries:
                if deliver < last_deliver:
                    violations.append(Violation(
                        "fifo",
                        f"pair {src}->{dst}: msg {msg_id} overtook an "
                        "earlier injection on a FIFO fabric",
                    ))
                last_deliver = max(last_deliver, deliver)

    # ------------------------------------------------------------------
    # Invariant 3: legal, alternating buffered-mode transitions
    # ------------------------------------------------------------------
    def _check_mode_transitions(self, violations: List[Violation]) -> None:
        tracer = self.machine.tracer
        delivery = getattr(self.machine.config, "delivery", "twocase")
        legal = LEGAL_ENTER_REASONS.get(delivery, _BASE_ENTER_REASONS)
        in_buffered: Dict[Tuple[int, int], bool] = {}
        for record in tracer.mode_records:
            key = (record.node, record.gid)
            currently = in_buffered.get(key, False)
            if record.entered:
                if record.reason not in legal:
                    violations.append(Violation(
                        "mode-reason",
                        f"node {record.node} gid {record.gid}: entered "
                        f"buffered mode for cause {record.reason!r}, "
                        f"illegal under delivery={delivery!r}",
                    ))
                if currently:
                    violations.append(Violation(
                        "mode-alternation",
                        f"node {record.node} gid {record.gid}: entered "
                        f"buffered mode twice without an exit "
                        f"(t={record.time})",
                    ))
                in_buffered[key] = True
            else:
                if record.reason != EXIT_REASON:
                    violations.append(Violation(
                        "mode-reason",
                        f"node {record.node} gid {record.gid}: exited "
                        f"buffered mode for unknown cause "
                        f"{record.reason!r}",
                    ))
                if not currently:
                    violations.append(Violation(
                        "mode-alternation",
                        f"node {record.node} gid {record.gid}: exited "
                        f"buffered mode without entering it "
                        f"(t={record.time})",
                    ))
                in_buffered[key] = False

    # ------------------------------------------------------------------
    # Invariant 4: buffer growth stays within physical bounds
    # ------------------------------------------------------------------
    def _check_buffer_bounds(self, violations: List[Violation]) -> None:
        from repro.glaze.buffering import VirtualBuffer

        machine = self.machine
        bound = machine.config.frames_per_node
        suspend_at = machine.config.overflow.suspend_pages
        suspensions = machine.overflow.stats.suspensions
        for job in machine.jobs:
            for state in job.node_states.values():
                buffer = state.buffer
                if not isinstance(buffer, VirtualBuffer):
                    continue  # pinned queues are bounded by construction
                peak = buffer.stats.max_pages
                if peak > bound:
                    violations.append(Violation(
                        "buffer-bound",
                        f"job {job.name} node {state.node_id}: buffer "
                        f"peaked at {peak} pages > {bound} frames",
                    ))
                if peak >= suspend_at and suspensions == 0:
                    violations.append(Violation(
                        "buffer-bound",
                        f"job {job.name} node {state.node_id}: buffer "
                        f"peaked at {peak} pages (suspend threshold "
                        f"{suspend_at}) but overflow control never "
                        "suspended",
                    ))

    # ------------------------------------------------------------------
    # Invariant 5: reliable-transport exactly-once bookkeeping
    # ------------------------------------------------------------------
    def _check_transport(self, violations: List[Violation],
                         transport: "ReliableTransport") -> None:
        for src, dst in transport.pairs_used():
            pair = (src, dst)
            sent = transport.sent_count(src, dst)
            log = transport.delivered_log.get(pair, [])
            # Exactly-once, in-order delivery means the log is exactly
            # the prefix 0, 1, 2, … — any deviation is a bug.
            for position, seq in enumerate(log):
                if seq != position:
                    violations.append(Violation(
                        "transport-order",
                        f"pair {src}->{dst}: delivery log {log[:8]}... "
                        f"breaks in-order exactly-once at index "
                        f"{position}",
                    ))
                    break
            delivered_upto = len(log)
            stashed = transport._stash.get(pair, {})
            for seq in range(delivered_upto, sent):
                key = (src, dst, seq)
                if key in transport.gave_up:
                    continue  # planned, bounded loss (budget exhausted)
                if seq in stashed:
                    continue  # resident, awaiting resequencing
                if key in transport._outstanding:
                    continue  # retry still pending at end of run
                violations.append(Violation(
                    "transport-loss",
                    f"pair {src}->{dst}: seq {seq} sent but never "
                    "delivered (and no retry pending)",
                ))


__all__ = ["DeliveryInvariantChecker", "Violation", "EXIT_REASON"]
