"""Adversarial "hog" workload: a receiver that will not extract.

The two-case argument (paper Sections 2 and 4.4) is that a process
which refuses to service its messages must not be able to wedge the
network or starve other jobs: the atomicity timer revokes its direct
delivery, arrivals divert into *its own* virtual buffer, and overflow
control eventually suspends the offender. :class:`HogApplication`
manufactures exactly that pathology so tests can watch the defences
fire:

* the victim node grabs an atomic section and sits on it, so queued
  arrivals trip the atomicity timer (``ATOMICITY_TIMEOUT`` transition);
* once revoked into buffered mode, its drain thread services messages
  pathologically slowly (each handler disposes, then burns
  ``service_cycles``), so the buffer only ever grows;
* every other node floods the victim for its whole send budget.

Run it for a fixed horizon with ``machine.run(until=...)`` — the point
is the steady state under attack, not completion::

    machine = Machine(SimulationConfig(num_nodes=4))
    hog = HogApplication(num_nodes=4)
    job = machine.add_job(hog)
    checker = machine.enable_invariant_checker()
    machine.run(until=2_000_000)
    assert job.two_case.transitions_to_buffered   # defences fired
    assert not checker.check()                    # nothing lost

Arrivals still resident in the victim's buffer at the horizon are
*resident*, not lost — the invariant checker accounts for them.
"""

from __future__ import annotations

from typing import Generator

from repro.apps.base import Application
from repro.core.udm import UdmRuntime
from repro.machine.processor import Compute


class HogApplication(Application):
    """Flood one node whose handlers effectively never finish."""

    name = "hog"

    def __init__(self, num_nodes: int, victim: int = 0,
                 flood_messages: int = 16, payload_words: int = 1024,
                 hold_cycles: int = 40_000,
                 service_cycles: int = 5_000_000,
                 send_gap: int = 50) -> None:
        if not 0 <= victim < num_nodes:
            raise ValueError("victim must be a valid node index")
        if payload_words < 1:
            raise ValueError("flood messages need at least one word")
        self.num_nodes = num_nodes
        self.victim = victim
        self.flood_messages = flood_messages
        self.payload_words = payload_words
        #: How long the victim squats in its atomic section — long
        #: enough to outlive any sane atomicity-timer preset.
        self.hold_cycles = hold_cycles
        #: Per-message handler burn; set far beyond the run horizon so
        #: extraction never keeps up with arrival.
        self.service_cycles = service_cycles
        self.send_gap = send_gap
        self.received = 0

    def _h_swallow(self, rt: UdmRuntime, msg) -> Generator:
        # Dispose first (the UDM discipline), then stall: the *next*
        # buffered message waits behind this handler indefinitely.
        yield from rt.dispose_current()
        self.received += 1
        yield Compute(self.service_cycles)

    def main(self, rt: UdmRuntime, node_index: int) -> Generator:
        if node_index == self.victim:
            # Hold the atomic section while the flood arrives; the
            # timer revokes it and flips this node to buffered mode.
            yield from rt.beginatom()
            yield Compute(self.hold_cycles)
            yield from rt.endatom()
            return
        payload = tuple(range(self.payload_words - 1))
        # Page-sized floods ride the bulk (DMA) path; small ones fit a
        # direct message. Either way they pile into the victim's buffer.
        bulk = self.payload_words > 14
        for i in range(self.flood_messages):
            if bulk:
                yield from rt.bulk_inject(self.victim, self._h_swallow,
                                          (i, *payload))
            else:
                yield from rt.inject(self.victim, self._h_swallow,
                                     (i, *payload))
            yield Compute(self.send_gap)

    def describe(self) -> str:
        return (
            f"hog: {self.num_nodes - 1} nodes x {self.flood_messages} "
            f"msgs -> node {self.victim} (never extracts)"
        )


__all__ = ["HogApplication"]
