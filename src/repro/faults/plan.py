"""Fault plans: the picklable, cache-key-friendly unit of adversity.

A :class:`FaultPlan` is pure data — every field is a JSON scalar — so a
plan composes with :class:`~repro.runner.spec.RunSpec` and the
persistent result cache exactly like any other run parameter: the
plan's canonical string rides in the spec, extending the spec hash, so
faulty and fault-free runs can never collide in ``.repro_cache/``.

Determinism contract: a ``(plan, machine seed)`` pair fully determines
the fault schedule. The injector draws every decision from named
:class:`~repro.sim.random.DeterministicRng` streams seeded by
``plan.seed``, and decisions are consumed in simulation-event order,
which the engine makes reproducible — so identical specs produce
bit-identical metrics whether run serially, in a worker process, or
replayed from the cache.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, FrozenSet, Optional, Tuple


@dataclass(frozen=True)
class FaultPlan:
    """Scheduled perturbations for one simulated run.

    All probabilities are per-event (per message send, per delivery
    attempt, per handler invocation). ``pairs`` optionally restricts
    the *fabric* faults (drop/duplicate/reorder/spike) to a set of
    ``src-dst`` pairs, e.g. ``"0-1;2-0"``; empty means every pair.
    """

    #: Seed for every fault-decision stream (independent of the
    #: machine seed, so the same adversity can replay across configs).
    seed: int = 0
    #: Per-message drop probability (unreliable-fabric mode).
    drop: float = 0.0
    #: Per-message duplication probability.
    duplicate: float = 0.0
    #: Reorder window in cycles: arrival jitter drawn from
    #: ``U[0, reorder]`` with per-pair FIFO enforcement *disabled* for
    #: affected pairs. 0 keeps the fabric in-order.
    reorder: int = 0
    #: Latency-spike probability and magnitude (order-preserving).
    spike: float = 0.0
    spike_cycles: int = 2_000
    #: Transient NI input-queue stall: probability per delivery attempt
    #: that the interface refuses input for ``stall_cycles``.
    stall: float = 0.0
    stall_cycles: int = 500
    #: Forced atomicity-timer expiries: this many, at seeded times
    #: uniform in ``[1, expiry_horizon]``, on seeded random nodes.
    expiries: int = 0
    expiry_horizon: int = 1_000_000
    #: Probability that a handler invocation synthesizes a page fault
    #: (a Section 4.3 buffered-mode trigger) before running.
    page_fault_rate: float = 0.0
    #: Mailbox service crashes: this many, at seeded times uniform in
    #: ``[1, mailbox_crash_horizon]``. Each crash wipes one seeded
    #: mailbox node's queued mail and dedup state and bumps its epoch,
    #: which clients observe at the next reconnect and answer with a
    #: replay of their bounded submission logs (see
    #: :mod:`repro.apps.mailbox`). A no-op on machines without a
    #: registered mailbox service.
    mailbox_crashes: int = 0
    mailbox_crash_horizon: int = 2_000_000
    #: Restrict fabric faults to these ``src-dst`` pairs ("" = all).
    pairs: str = ""
    #: Never fault kernel-GID messages (OS traffic must stay reliable;
    #: the paper's protection model assumes the kernel trusts its own
    #: transport).
    spare_kernel: bool = True

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "spike", "stall",
                     "page_fault_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name}={value} is not a probability")
        for name in ("reorder", "spike_cycles", "stall_cycles",
                     "expiries", "expiry_horizon", "mailbox_crashes",
                     "mailbox_crash_horizon"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")
        # Canonicalize the pair restriction (validates eagerly too).
        # Whitespace, empty chunks and duplicates would otherwise make
        # describe() emit a string that parses to a *different* plan —
        # e.g. ``pairs=" 0-1 ;"`` described to ``pairs= 0-1 ;`` but
        # parsed back stripped, breaking the roundtrip the cache keys
        # rely on. Sorted, deduplicated ``src-dst;...`` is the one
        # canonical spelling of every restriction set.
        restricted = self.pair_set()
        canonical = "" if restricted is None else ";".join(
            f"{src}-{dst}" for src, dst in sorted(restricted)
        )
        if canonical != self.pairs:
            object.__setattr__(self, "pairs", canonical)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_null(self) -> bool:
        """True when the plan perturbs nothing."""
        return not (
            self.drop or self.duplicate or self.reorder or self.spike
            or self.stall or self.expiries or self.page_fault_rate
            or self.mailbox_crashes
        )

    @property
    def lossy(self) -> bool:
        """True when messages can be lost outright (retry territory)."""
        return self.drop > 0.0

    @property
    def unordered(self) -> bool:
        return self.reorder > 0

    def pair_set(self) -> Optional[FrozenSet[Tuple[int, int]]]:
        """The restricted (src, dst) set, or None for "all pairs"."""
        if not self.pairs:
            return None
        out = set()
        for chunk in self.pairs.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            try:
                src_text, dst_text = chunk.split("-")
                out.add((int(src_text), int(dst_text)))
            except ValueError:
                raise ValueError(
                    f"bad pair {chunk!r} in pairs= (want 'src-dst')"
                ) from None
        return frozenset(out)

    def affects_pair(self, src: int, dst: int) -> bool:
        restricted = self.pair_set()
        return restricted is None or (src, dst) in restricted

    # ------------------------------------------------------------------
    # Canonical text form (the CLI flag and the spec parameter)
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Canonical compact form: non-default fields, field order.

        ``FaultPlan.parse(plan.describe()) == plan`` for every plan, so
        the string is a stable cache-key fragment.
        """
        parts = []
        for field in fields(self):
            value = getattr(self, field.name)
            if value == field.default:
                continue
            if isinstance(value, bool):
                value = int(value)
            parts.append(f"{field.name}={value}")
        return ",".join(parts)

    @classmethod
    def parse(cls, text: Optional[str]) -> Optional["FaultPlan"]:
        """Parse ``"drop=0.05,seed=7"``; empty/None parses to None.

        Values are coerced by the declared field type; unknown names
        raise (a typo'd fault must never silently run fault-free).
        """
        if not text:
            return None
        types: Dict[str, type] = {f.name: f.type for f in fields(cls)}
        kwargs: Dict[str, object] = {}
        for chunk in text.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            if "=" not in chunk:
                raise ValueError(f"bad fault setting {chunk!r} (want k=v)")
            name, _, raw = chunk.partition("=")
            name = name.strip()
            if name not in types:
                known = ", ".join(sorted(types))
                raise ValueError(
                    f"unknown fault parameter {name!r}; known: {known}"
                )
            declared = types[name]
            if declared in ("float", float):
                kwargs[name] = float(raw)
            elif declared in ("int", int):
                kwargs[name] = int(raw)
            elif declared in ("bool", bool):
                kwargs[name] = raw.strip().lower() not in ("0", "false", "")
            else:
                kwargs[name] = raw.strip()
        return cls(**kwargs)


__all__ = ["FaultPlan"]
