"""Faulted-run executor: reliable messaging demo under fault injection.

The run kind ``faulted`` drives :class:`ReliableAllPairs` — every node
sends a fixed budget of reliable messages round-robin to its peers over
a (possibly faulty) fabric — with the
:class:`~repro.faults.DeliveryInvariantChecker` always on. Its metrics
add the fault/recovery counters (drops, duplicates, retries,
violations) to the standard set.

Determinism: the spec fully determines the metrics. All fault decisions
come from the plan's seeded streams, consumed in simulation order, and
neither the metrics nor the ``extra`` dict include simulation-local
identifiers (``msg_id`` counters differ between worker processes), so
serial, parallel and cached executions are bit-identical.

With ``retries=False`` the same workload becomes the negative control:
planned drops are *observed* as ``transport-loss`` violations instead
of being repaired, proving the checker actually measures something.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from repro.analysis.metrics import RunMetrics, collect_metrics
from repro.apps.base import Application
from repro.core.udm import UdmRuntime
from repro.experiments.config import SimulationConfig
from repro.faults.checker import Violation
from repro.machine.machine import Machine
from repro.machine.processor import Compute
from repro.protocols.reliable import ReliableTransport
from repro.runner import RunSpec


class ReliableAllPairs(Application):
    """All-pairs exchange over a :class:`ReliableTransport`.

    Each node sends ``messages`` payloads round-robin to its peers,
    then polls (boundedly) for its expected arrivals. The poll budget —
    not an unconditional wait — is what lets the lossy,
    retries-disabled negative control terminate.
    """

    name = "reliable-all-pairs"

    def __init__(self, num_nodes: int, messages: int = 8,
                 transport: Optional[ReliableTransport] = None,
                 send_gap: int = 200, poll_gap: int = 400,
                 max_polls: int = 5_000) -> None:
        self.num_nodes = num_nodes
        self.messages = messages
        self.transport = transport or ReliableTransport(num_nodes)
        self.send_gap = send_gap
        self.poll_gap = poll_gap
        self.max_polls = max_polls
        #: Arrivals each node waits for, from the round-robin schedule.
        self.expected = [0] * num_nodes
        for src in range(num_nodes):
            peers = [n for n in range(num_nodes) if n != src]
            if not peers:
                continue
            for i in range(messages):
                self.expected[peers[i % len(peers)]] += 1

    def main(self, rt: UdmRuntime, node_index: int) -> Generator:
        peers = [n for n in range(self.num_nodes) if n != node_index]
        if not peers:
            return
        for i in range(self.messages):
            dst = peers[i % len(peers)]
            yield from self.transport.send(rt, dst, (node_index, i))
            yield Compute(self.send_gap)
        inbox = self.transport.inbox[node_index]
        for _ in range(self.max_polls):
            if len(inbox) >= self.expected[node_index]:
                return
            yield Compute(self.poll_gap)

    def describe(self) -> str:
        return (
            f"reliable all-pairs: {self.num_nodes} nodes x "
            f"{self.messages} msgs"
        )


def run_faulted(num_nodes: int = 4, messages: int = 8, seed: int = 7,
                faults: str = "", retries: bool = True,
                retry_timeout: int = 4_000, max_retries: int = 20,
                delivery: str = "twocase",
                ) -> Tuple[RunMetrics, ReliableTransport,
                           List[Violation], Machine]:
    """One faulted reliable-messaging run, invariants checked.

    Returns ``(metrics, transport, violations, machine)`` so tests can
    dig into the ledgers; :func:`execute_faulted` is the pure-data
    wrapper the runner uses.
    """
    config = SimulationConfig(num_nodes=num_nodes, seed=seed,
                              delivery=delivery).with_faults(faults or None)
    machine = Machine(config)
    transport = ReliableTransport(num_nodes, retry_timeout=retry_timeout,
                                  max_retries=max_retries,
                                  retries=retries)
    app = ReliableAllPairs(num_nodes, messages=messages,
                           transport=transport)
    job = machine.add_job(app)
    checker = machine.enable_invariant_checker()
    machine.start()
    machine.run_until_job_done(job, limit=2_000_000_000)
    violations = checker.check(transports=[transport])
    # collect_metrics sums retries over machine.transports, where the
    # transport registered itself at first send.
    metrics = collect_metrics(machine, job)
    metrics.invariant_violations = len(violations)
    return metrics, transport, violations, machine


def execute_faulted(num_nodes: int = 4, messages: int = 8, seed: int = 7,
                    faults: str = "", retries: bool = True,
                    retry_timeout: int = 4_000, max_retries: int = 20,
                    delivery: str = "twocase"):
    """Runner executor for one faulted run (kind ``faulted``)."""
    metrics, transport, violations, _machine = run_faulted(
        num_nodes=num_nodes, messages=messages, seed=seed, faults=faults,
        retries=retries, retry_timeout=retry_timeout,
        max_retries=max_retries, delivery=delivery,
    )
    # ``extra`` must be cross-process deterministic: violation *codes*
    # always are; full details are included only for transport-level
    # findings (keyed by sequence numbers, not simulation msg_ids).
    extra = {
        "acks_sent": transport.acks_sent,
        "duplicates_suppressed": transport.duplicates_suppressed,
        "gave_up": len(transport.gave_up),
        "violation_codes": ",".join(
            sorted(v.code for v in violations)
        ),
        "transport_violations": " | ".join(
            str(v) for v in violations if v.code.startswith("transport-")
        ),
    }
    return metrics, extra


def faulted_spec(num_nodes: int = 4, messages: int = 8, seed: int = 7,
                 faults: str = "", retries: bool = True,
                 retry_timeout: int = 4_000, max_retries: int = 20,
                 delivery: str = "twocase") -> RunSpec:
    """The :class:`RunSpec` describing one faulted run.

    The fault plan rides in the spec as its canonical compact string,
    so two runs differing only in faults hash to different cache keys.
    The delivery discipline joins the spec only when non-default, so
    pre-existing cache entries for two-case runs stay valid.
    """
    params = dict(num_nodes=num_nodes, messages=messages, seed=seed,
                  faults=faults, retries=retries,
                  retry_timeout=retry_timeout, max_retries=max_retries)
    if delivery != "twocase":
        params["delivery"] = delivery
    return RunSpec.make("faulted", **params)


__all__ = ["ReliableAllPairs", "run_faulted", "execute_faulted",
           "faulted_spec"]
