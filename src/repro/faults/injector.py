"""The seeded fault-decision engine behind a :class:`FaultPlan`.

One :class:`FaultInjector` exists per faulted machine. Each fault class
draws from its own named :class:`~repro.sim.random.DeterministicRng`
stream so enabling one fault never perturbs another's schedule — the
same decorrelation property the experiment RNGs rely on. Decisions are
consumed in simulation-event order, which the engine makes
deterministic, so the whole fault schedule is a pure function of
``(plan, event order)``.

The injector is passive: the fabric, the network interfaces and the UDM
runtime *ask* it at their fault points. It also keeps the ledgers
(dropped / duplicated message ids, counters) the
:class:`~repro.faults.checker.DeliveryInvariantChecker` reconciles at
end of run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Set, Tuple

from repro.faults.plan import FaultPlan
from repro.sim.random import DeterministicRng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import Machine
    from repro.network.message import Message


@dataclass
class SendDecision:
    """What the fabric should do with one launched message."""

    drop: bool = False
    duplicate: bool = False
    extra_latency: int = 0
    #: When True the per-(src, dst) FIFO floor is waived and ``jitter``
    #: cycles are added, letting the message overtake or be overtaken.
    unordered: bool = False
    jitter: int = 0


_NO_FAULTS = SendDecision()


class FaultInjector:
    """Turns a :class:`FaultPlan` into concrete runtime decisions."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._pair_set = plan.pair_set()
        self._fabric_rng = DeterministicRng(plan.seed, "faults/fabric")
        self._stall_rng = DeterministicRng(plan.seed, "faults/ni-stall")
        self._handler_rng = DeterministicRng(plan.seed, "faults/handler")
        self._timer_rng = DeterministicRng(plan.seed, "faults/timer")
        self._mailbox_rng = DeterministicRng(plan.seed, "faults/mailbox")
        # Ledgers for the invariant checker.
        self.dropped_ids: Set[int] = set()
        self.duplicate_ids: Set[int] = set()
        self.drops = 0
        self.duplicates = 0
        self.spikes = 0
        self.reorders = 0
        self.stalls = 0
        self.forced_expiries = 0
        self.page_faults = 0
        self.mailbox_crashes = 0

    # ------------------------------------------------------------------
    # Fabric hook (called once per launched message)
    # ------------------------------------------------------------------
    def on_send(self, message: "Message") -> SendDecision:
        plan = self.plan
        if plan.spare_kernel and message.is_kernel:
            return _NO_FAULTS
        if self._pair_set is not None and \
                (message.src, message.dst) not in self._pair_set:
            return _NO_FAULTS
        rng = self._fabric_rng
        decision = SendDecision()
        if plan.drop and rng.random() < plan.drop:
            decision.drop = True
            self.drops += 1
            return decision
        if plan.duplicate and rng.random() < plan.duplicate:
            decision.duplicate = True
            self.duplicates += 1
        if plan.spike and rng.random() < plan.spike:
            decision.extra_latency = plan.spike_cycles
            self.spikes += 1
        if plan.reorder:
            decision.unordered = True
            decision.jitter = rng.uniform_int(0, plan.reorder)
            self.reorders += 1
        return decision

    def note_dropped(self, msg_id: int) -> None:
        self.dropped_ids.add(msg_id)

    def note_duplicate(self, msg_id: int) -> None:
        self.duplicate_ids.add(msg_id)

    # ------------------------------------------------------------------
    # NI hooks
    # ------------------------------------------------------------------
    def ni_stall_cycles(self, node_id: int) -> int:
        """Cycles a fresh input-queue stall should last (0 = no stall)."""
        plan = self.plan
        if not plan.stall:
            return 0
        if self._stall_rng.random() < plan.stall:
            self.stalls += 1
            return plan.stall_cycles
        return 0

    def handler_page_fault(self, node_id: int) -> bool:
        """Should this handler invocation synthesize a page fault?"""
        rate = self.plan.page_fault_rate
        if not rate:
            return False
        if self._handler_rng.random() < rate:
            self.page_faults += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Machine-level schedule (forced atomicity-timer expiries)
    # ------------------------------------------------------------------
    def schedule_forced_expiries(self, machine: "Machine") -> None:
        """Install the planned timer expiries on the event heap.

        Called from :meth:`Machine.start`. Each expiry fires the NI's
        atomicity-timeout path on a seeded node at a seeded time — the
        revocation trigger, regardless of what the user was doing.
        """
        plan = self.plan
        if not plan.expiries:
            return
        horizon = max(1, plan.expiry_horizon)
        points: List[Tuple[int, int]] = sorted(
            (self._timer_rng.uniform_int(1, horizon),
             self._timer_rng.uniform_int(0, machine.config.num_nodes - 1))
            for _ in range(plan.expiries)
        )
        for when, node_id in points:
            ni = machine.nodes[node_id].ni

            def fire(ni=ni) -> None:
                self.forced_expiries += 1
                ni.force_timeout()

            machine.engine.call_after(when, fire)

    def schedule_mailbox_crashes(self, machine: "Machine") -> None:
        """Install the planned mailbox-service crashes.

        Called from :meth:`Machine.start`. Each crash fires at a seeded
        time and asks every registered mailbox service (see
        :meth:`Machine.register_mailbox`) to crash one seeded mailbox
        node — wiping its queued mail and dedup state and bumping its
        epoch, so reconnecting clients detect the loss and replay.
        Services register lazily from application ``main`` generators,
        which run after :meth:`Machine.start`; the lookup therefore
        happens at fire time, and a machine that never registers a
        mailbox takes no fault.
        """
        plan = self.plan
        if not plan.mailbox_crashes:
            return
        horizon = max(1, plan.mailbox_crash_horizon)
        times = sorted(self._mailbox_rng.uniform_int(1, horizon)
                       for _ in range(plan.mailbox_crashes))
        for when in times:

            def fire() -> None:
                for service in getattr(machine, "mailboxes", ()):
                    if service.crash(machine.engine.now,
                                     self._mailbox_rng):
                        self.mailbox_crashes += 1

            machine.engine.call_after(when, fire)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultInjector plan=[{self.plan.describe() or 'null'}] "
            f"drops={self.drops} dups={self.duplicates} "
            f"stalls={self.stalls}>"
        )


__all__ = ["FaultInjector", "SendDecision"]
