"""The loose gang scheduler with synchronized (skewable) clocks.

Glaze's system scheduler gang-schedules jobs "using the local cycle
count register on each node as a cue to perform a gang switch"; the
paper's experiments degrade schedule quality "by skewing the cycle count
register on each node ... This skew creates a window at the beginning
and end of each timeslice during which arriving messages will generate a
mismatch-available interrupt, forcing the application into buffered
mode" (Section 5).

We reproduce that mechanism exactly: node *n* performs its *k*-th gang
switch at ``k * timeslice + offset[n]``, with offsets spread over
``skew_fraction * timeslice``. All nodes rotate through the same job
list in the same order, so within a slice every node runs the same job —
except inside the skew windows.

The scheduler also honours overflow control's gross actions: a suspended
job is skipped in the rotation until resumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.glaze.jobs import Job, JobNodeState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import Machine


@dataclass
class SchedulerStats:
    gang_switches: int = 0
    skipped_suspended: int = 0
    gang_advisories: int = 0
    resynced_ticks: int = 0


class GangScheduler:
    """Loose gang scheduling over the machine's job list."""

    def __init__(self, machine: "Machine", timeslice: int,
                 skew_fraction: float = 0.0) -> None:
        if timeslice <= 0:
            raise ValueError("timeslice must be positive")
        if skew_fraction < 0:
            raise ValueError("skew fraction cannot be negative")
        self.machine = machine
        self.timeslice = timeslice
        self.skew_fraction = skew_fraction
        self.jobs: List[Job] = []
        self.stats = SchedulerStats()
        self._slot: Dict[int, int] = {}
        self._started = False
        #: Gang-scheduling advisory (Section 4.2): while set, switch
        #: ticks ignore the per-node skew — the scheduler resynchronizes
        #: clocks so the advised application can recover from buffering.
        self._resync_until_tick = -1
        self._max_tick_seen = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def add_job(self, job: Job) -> None:
        if self._started:
            raise RuntimeError("cannot add jobs after the scheduler started")
        self.jobs.append(job)

    def node_offset(self, node_id: int) -> int:
        """Clock skew of a node, in cycles.

        Offsets are spread linearly across nodes so the worst pairwise
        skew equals ``skew_fraction * timeslice`` — the paper's single
        skew knob.
        """
        num_nodes = self.machine.config.num_nodes
        if num_nodes <= 1:
            return 0
        span = self.skew_fraction * self.timeslice
        return round(span * node_id / (num_nodes - 1))

    def start(self) -> None:
        """Install the first job everywhere and arm the switch timers."""
        if self._started:
            raise RuntimeError("scheduler already started")
        if not self.jobs:
            raise RuntimeError("no jobs to schedule")
        self._started = True
        engine = self.machine.engine
        now = engine.now
        # scheduled_nodes() is every node on a monolithic machine; on a
        # shard it is just the local group, which is what keeps the
        # replica's foreign nodes inert (no context switch, no ticks).
        for node in self.machine.scheduled_nodes():
            self._slot[node.node_id] = 0
            node.kernel.scheduled = None
            node.processor.raise_kernel(node.kernel.context_switch_factory)
            if len(self.jobs) > 1:
                self._arm_tick(node.node_id, tick_index=1)

    def _arm_tick(self, node_id: int, tick_index: int) -> None:
        if tick_index > self._max_tick_seen:
            self._max_tick_seen = tick_index
        offset = self.node_offset(node_id)
        if tick_index <= self._resync_until_tick:
            offset = 0  # gang advisory in force: clocks resynchronized
            self.stats.resynced_ticks += 1
        when = (
            self.machine.start_offset
            + tick_index * self.timeslice
            + offset
        )
        engine = self.machine.engine
        if when <= engine.now:
            when = engine.now + 1
        engine.schedule(when, self._tick_boxed, (node_id, tick_index))

    def _tick_boxed(self, boxed) -> None:
        self._tick(boxed[0], boxed[1])

    def _tick(self, node_id: int, tick_index: int) -> None:
        node = self.machine.nodes[node_id]
        self.stats.gang_switches += 1
        node.processor.raise_kernel(node.kernel.context_switch_factory)
        self._arm_tick(node_id, tick_index + 1)

    # ------------------------------------------------------------------
    # Selection (called from the kernel's context-switch frame)
    # ------------------------------------------------------------------
    def pick_next(self, node_id: int) -> Optional[JobNodeState]:
        """Choose the next job for a node's new quantum."""
        if not self.jobs:
            return None
        slot = self._slot[node_id]
        self._slot[node_id] = slot + 1
        for probe in range(len(self.jobs)):
            job = self.jobs[(slot + probe) % len(self.jobs)]
            if job.suspended:
                self.stats.skipped_suspended += 1
                continue
            state = job.node_states.get(node_id)
            if state is None:
                continue
            return state
        return None

    # ------------------------------------------------------------------
    # Overflow-control actions
    # ------------------------------------------------------------------
    def advise_gang(self, job: Job, slices: int = 8) -> None:
        """Act on a buffering advisory: tighten co-scheduling.

        "A well-behaved application will recover from buffering if gang
        scheduled, so the buffering system advises the scheduler to
        gang schedule the application." We model the response as a
        clock resynchronization: the next ``slices`` gang switches run
        with zero skew, letting the advised job drain its buffers in
        fully overlapped quanta.
        """
        self.stats.gang_advisories += 1
        job.needs_gang_advice = True
        self._resync_until_tick = max(
            self._resync_until_tick, self._max_tick_seen + slices
        )

    def suspend_job(self, job: Job, duration: int) -> None:
        """Globally suspend a job, resuming it after ``duration``."""
        if job.suspended:
            return
        job.suspended = True
        engine = self.machine.engine
        engine.call_after(duration, self._resume, job)

    @staticmethod
    def _resume(job: Job) -> None:
        job.suspended = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<GangScheduler jobs={len(self.jobs)} "
            f"slice={self.timeslice} skew={self.skew_fraction}>"
        )
