"""The virtual software message buffer (Section 4.2).

One :class:`VirtualBuffer` exists per (job, node). The kernel's
mismatch-available handler inserts diverted messages at the tail (via
DMA); the application — transparently, through the runtime's virtualized
extract — consumes from the head. Messages are always processed in
order ("In our current implementation, queued messages are always
processed in order").

Pages are demand-allocated from the job's address space as messages
accumulate, and unmapped as the *head* page fully drains, so physical
consumption tracks the live window of buffered messages — the property
Section 5.1 measures ("less than seven pages/node in all cases").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from repro.network.message import Message
from repro.glaze.vm import AddressSpace, OutOfFrames


class BufferFull(Exception):
    """Raised by a pinned queue when an insert exceeds its capacity.

    Pinned queues cannot grow: the hardware leaves the message in the
    network (backpressure) until the application drains — the
    memory-based interface's flow-control behaviour.
    """


class _BufferPage:
    """One buffer page: fill level and count of live messages."""

    __slots__ = ("vpn", "words_used", "messages_live")

    def __init__(self, vpn: int, capacity: int) -> None:
        self.vpn = vpn
        self.words_used = 0
        self.messages_live = 0


@dataclass
class BufferStats:
    inserted: int = 0
    consumed: int = 0
    pages_allocated: int = 0
    pages_released: int = 0
    max_pages: int = 0
    max_queued_messages: int = 0


class VirtualBuffer:
    """FIFO message buffer in a job's demand-paged virtual memory."""

    def __init__(self, space: AddressSpace) -> None:
        self.space = space
        self.page_size_words = space.page_size_words
        self._queue: Deque[Tuple[Message, _BufferPage]] = deque()
        self._pages: Deque[_BufferPage] = deque()
        self.stats = BufferStats()

    # ------------------------------------------------------------------
    # Producer side (kernel)
    # ------------------------------------------------------------------
    def pages_needed(self, message: Message) -> int:
        """Fresh pages an insert of this message would map.

        The kernel asks first so it can charge the Table 5 vmalloc cost
        per page actually allocated. Direct messages never straddle a
        page boundary (first-fit, like the original allocator); bulk
        messages larger than a page start on a fresh page and span as
        many as they need.
        """
        words = message.length_words
        if words <= self.page_size_words:
            if not self._pages:
                return 1
            tail = self._pages[-1]
            return 1 if tail.words_used + words > self.page_size_words \
                else 0
        return (words + self.page_size_words - 1) // self.page_size_words

    def needs_new_page(self, message: Message) -> bool:
        """Would inserting this message require at least one fresh page?"""
        return self.pages_needed(message) > 0

    def _map_page(self) -> "_BufferPage":
        vpn = self.space.map_fresh_page()  # may raise OutOfFrames
        page = _BufferPage(vpn, self.page_size_words)
        self._pages.append(page)
        self.stats.pages_allocated += 1
        if len(self._pages) > self.stats.max_pages:
            self.stats.max_pages = len(self._pages)
        return page

    def insert(self, message: Message) -> int:
        """Append a message; returns the number of fresh pages mapped.

        Raises :class:`~repro.glaze.vm.OutOfFrames` when a page is
        needed and the node's frame pool is empty — the caller owns the
        guaranteed-delivery (page-out) response. Bulk messages may span
        several pages; each holds a live reference until the message is
        consumed.
        """
        words = message.length_words
        touched: list = []
        new_pages = 0
        if words <= self.page_size_words:
            if self.pages_needed(message):
                self._map_page()
                new_pages = 1
            page = self._pages[-1]
            page.words_used += words
            touched.append(page)
        else:
            remaining = words
            while remaining > 0:
                page = self._map_page()
                new_pages += 1
                take = min(self.page_size_words, remaining)
                page.words_used += take
                remaining -= take
                touched.append(page)
        for page in touched:
            page.messages_live += 1
        message.buffered = True
        self._queue.append((message, tuple(touched)))
        self.stats.inserted += 1
        if len(self._queue) > self.stats.max_queued_messages:
            self.stats.max_queued_messages = len(self._queue)
        return new_pages

    # ------------------------------------------------------------------
    # Consumer side (application, via the runtime)
    # ------------------------------------------------------------------
    @property
    def head(self) -> Optional[Message]:
        return self._queue[0][0] if self._queue else None

    def __iter__(self):
        return (message for message, _pages in self._queue)

    def pop(self) -> Message:
        """Consume the head message, releasing its page(s) when drained."""
        if not self._queue:
            raise IndexError("pop from empty virtual buffer")
        message, pages = self._queue.popleft()
        for page in pages:
            page.messages_live -= 1
        self.stats.consumed += 1
        # Release fully-drained pages from the head of the page list.
        # Only a page that is no longer the insertion tail may go: the
        # tail keeps accepting messages even after a transient drain.
        while (
            self._pages
            and self._pages[0].messages_live == 0
            and (len(self._pages) > 1 or not self._queue)
        ):
            drained = self._pages.popleft()
            self.space.unmap_page(drained.vpn)
            self.stats.pages_released += 1
        return message

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._queue)

    @property
    def empty(self) -> bool:
        return not self._queue

    @property
    def pages_in_use(self) -> int:
        return len(self._pages)

    def audit(self) -> None:
        """Internal consistency check (used by property tests)."""
        live = sum(page.messages_live for page in self._pages)
        references = sum(len(pages) for _msg, pages in self._queue)
        if live != references:
            raise AssertionError(
                f"page live counts {live} != queued page references "
                f"{references}"
            )
        if self.pages_in_use != self.space.mapped_pages:
            raise AssertionError(
                f"buffer pages {self.pages_in_use} != mapped pages "
                f"{self.space.mapped_pages}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<VirtualBuffer msgs={len(self._queue)} "
            f"pages={self.pages_in_use}>"
        )


class PinnedQueue:
    """A pinned per-process message queue: the memory-based baseline.

    The Figure 1(b) interface allocates a fixed set of physical pages
    per process up front and the hardware DMAs every arriving message
    into them. Capacity is a hardware ring: when the queue is full the
    message stays in the network until the application drains
    (:class:`BufferFull`). No pages are ever demand-allocated or
    released — the memory cost the paper's virtual buffering avoids.

    Exposes the same consumer/producer interface as
    :class:`VirtualBuffer` so the kernel and runtime are agnostic to
    the architecture.
    """

    def __init__(self, space: AddressSpace, pinned_pages: int) -> None:
        if pinned_pages < 1:
            raise ValueError("a pinned queue needs at least one page")
        self.space = space
        self.page_size_words = space.page_size_words
        self.pinned_pages = pinned_pages
        self.capacity_words = pinned_pages * space.page_size_words
        # Pin the pages now; they are never returned.
        self._vpns = [space.map_fresh_page() for _ in range(pinned_pages)]
        self.words_in_use = 0
        self._queue: Deque[Message] = deque()
        self.stats = BufferStats(max_pages=pinned_pages,
                                 pages_allocated=pinned_pages)

    # -- producer (the interface hardware) ------------------------------
    def pages_needed(self, message: Message) -> int:
        return 0  # pinned: never demand-allocates

    def needs_new_page(self, message: Message) -> bool:
        return False

    def insert(self, message: Message) -> int:
        words = message.length_words
        if words > self.capacity_words:
            raise ValueError(
                f"message of {words} words can never fit a "
                f"{self.capacity_words}-word pinned queue"
            )
        if self.words_in_use + words > self.capacity_words:
            raise BufferFull(
                f"pinned queue full ({self.words_in_use}/"
                f"{self.capacity_words} words)"
            )
        self.words_in_use += words
        message.buffered = True
        self._queue.append(message)
        self.stats.inserted += 1
        if len(self._queue) > self.stats.max_queued_messages:
            self.stats.max_queued_messages = len(self._queue)
        return 0

    # -- consumer (the application) --------------------------------------
    @property
    def head(self) -> Optional[Message]:
        return self._queue[0] if self._queue else None

    def pop(self) -> Message:
        if not self._queue:
            raise IndexError("pop from empty pinned queue")
        message = self._queue.popleft()
        self.words_in_use -= message.length_words
        self.stats.consumed += 1
        return message

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self):
        return iter(self._queue)

    @property
    def empty(self) -> bool:
        return not self._queue

    @property
    def pages_in_use(self) -> int:
        return self.pinned_pages  # always: that is the point

    def audit(self) -> None:
        words = sum(m.length_words for m in self._queue)
        if words != self.words_in_use:
            raise AssertionError(
                f"word accounting {self.words_in_use} != queue {words}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PinnedQueue msgs={len(self._queue)} "
            f"words={self.words_in_use}/{self.capacity_words}>"
        )
