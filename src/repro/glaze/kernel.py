"""The per-node Glaze kernel.

One :class:`NodeKernel` per node owns:

* the NI interrupt vectors — *mismatch-available* (demultiplex diverted
  messages into per-job virtual buffers, Figure 5) and
  *atomicity-timeout* (revoke the user's interrupt-disable privilege and
  enter buffered mode);
* the synchronous trap services (Table 2): dispose-extend emulation,
  atomicity-extend (spawn the buffered-mode message-handling thread),
  page faults, and the fatal protocol traps;
* two-case mode transitions: entering buffered mode for any of the
  Section 4.3 reasons, and the buffer-drained exit back to fast mode;
* the context-switch path used by the gang scheduler, including save and
  restore of the user's UAC bits and the quantum-start transition into
  buffered mode when messages accumulated while the job was out;
* the guaranteed-delivery path: when the frame pool is empty, the
  insertion handler pages space out over the second network and invokes
  overflow control.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Generator, Optional

from repro.core.two_case import DeliveryMode, TransitionReason
from repro.machine.processor import Compute, Frame
from repro.network.message import KERNEL_GID, Message
from repro.ni.traps import Trap, TrapSignal
from repro.glaze.jobs import Job, JobNodeState

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.machine.node import Node
    from repro.machine.machine import Machine


class GlazeError(RuntimeError):
    """Fatal operating-system-level condition in the simulation."""


class ApplicationProtocolError(GlazeError):
    """An application violated the UDM discipline (e.g. dispose-failure)."""


@dataclass
class KernelStats:
    mismatch_services: int = 0
    messages_inserted: int = 0
    insert_cycles: int = 0
    vmalloc_inserts: int = 0
    dropped_unknown_gid: int = 0
    revocations: int = 0
    watchdog_fires: int = 0
    page_faults: int = 0
    page_outs: int = 0
    context_switches: int = 0
    kernel_messages: int = 0


class NodeKernel:
    """Glaze on one node."""

    def __init__(self, node: "Node", machine: "Machine") -> None:
        self.node = node
        self.machine = machine
        self.stats = KernelStats()
        #: The job currently scheduled on this node (None = idle).
        self.scheduled: Optional[JobNodeState] = None
        #: Kernel-message services, by handler name.
        self._services: Dict[str, Callable[[Message], Generator]] = {}
        #: Set when the mismatch service left a message in the network
        #: (pinned queue full): re-delivery retries after a delay.
        self._mismatch_retry = False
        #: Message popped from the NI but not yet inserted/dispatched —
        #: the mismatch service holds it across its yields. Tracked so
        #: the invariant checker can count it as resident, not lost.
        self.in_transit: Optional[Message] = None

        ni = node.ni
        ni.discipline.bind(self)
        ni.deliver_mismatch_available = self._raise_mismatch
        ni.deliver_atomicity_timeout = self._raise_timeout
        ni.deliver_message_available = self._raise_message_available
        ni.user_level_ready = lambda: not node.processor.in_kernel
        node.processor.on_return_to_user.append(ni.reevaluate)
        machine.second_network.attach(node.node_id, self._second_net_service)

    # ------------------------------------------------------------------
    # Shorthand
    # ------------------------------------------------------------------
    @property
    def ni(self):
        return self.node.ni

    @property
    def processor(self):
        return self.node.processor

    @property
    def costs(self):
        return self.machine.costs

    @property
    def engine(self):
        return self.machine.engine

    @property
    def _always_buffered(self) -> bool:
        """No fast case exists: the always-buffered ablation or the
        memory-based baseline architecture."""
        from repro.core.two_case import DeliveryArchitecture

        config = self.machine.config
        return (
            config.force_buffered
            or config.architecture is DeliveryArchitecture.MEMORY_BASED
        )

    # ------------------------------------------------------------------
    # Kernel services (messages on the main network with the kernel GID,
    # and service requests on the second network)
    # ------------------------------------------------------------------
    def register_service(self, name: str,
                         handler: Callable[[Message], Generator]) -> None:
        if name in self._services:
            raise ValueError(f"kernel service {name!r} already registered")
        self._services[name] = handler

    def _second_net_service(self, src: int, kind: str, payload: Any) -> None:
        """Second-network messages: overflow-control coordination."""
        if kind == "suspend-job":
            job = self.machine.job_by_gid(payload["gid"])
            if job is not None:
                job.suspended = True
        elif kind == "resume-job":
            job = self.machine.job_by_gid(payload["gid"])
            if job is not None:
                job.suspended = False
        # Unknown kinds are ignored: the second network is best-effort
        # infrastructure shared with other users (e.g. shared memory).

    # ------------------------------------------------------------------
    # Interrupt delivery
    # ------------------------------------------------------------------
    def _raise_mismatch(self) -> None:
        self.processor.raise_kernel(self._mismatch_factory)

    def _mismatch_factory(self) -> Optional[Frame]:
        ni = self.ni
        if not ni.mismatch_pending:
            # Condition evaporated (e.g. divert cleared) before delivery.
            ni.mismatch_serviced()
            return None
        return Frame(
            self._mismatch_service(), name=f"k:mismatch@{self.node.node_id}",
            kernel=True, on_done=lambda _res: self._mismatch_done(),
        )

    def _mismatch_done(self) -> None:
        if self._mismatch_retry:
            # A pinned queue was full: hold the message in the network
            # and retry delivery after the hardware's backoff.
            self._mismatch_retry = False
            self.engine.call_after(self.costs.kernel.pinned_retry_delay,
                                   self.ni.mismatch_serviced)
            return
        self.ni.mismatch_serviced()

    def _raise_message_available(self) -> None:
        """Route the user interrupt to the scheduled job's runtime."""
        state = self.scheduled
        if state is None or state.runtime is None:
            # No user context can take the upcall; drop the latch
            # without re-evaluating (the next state change re-raises).
            self.ni._upcall_in_service = False
            return
        state.runtime.raise_upcall()

    def _raise_timeout(self) -> None:
        self.processor.raise_kernel(self._timeout_factory)

    def _timeout_factory(self) -> Optional[Frame]:
        return Frame(
            self._timeout_service(), name=f"k:timeout@{self.node.node_id}",
            kernel=True,
        )

    # ------------------------------------------------------------------
    # Mismatch-available service: the buffer-insertion handler
    # ------------------------------------------------------------------
    def _mismatch_service(self) -> Generator:
        """Drain mismatching messages into software buffers (Figure 5)."""
        self.stats.mismatch_services += 1
        yield Compute(self.costs.kernel.mismatch_entry)
        ni = self.ni
        # Discipline surcharge: zerocopy charges the protection-fault
        # trap that redirected delivery here, damq the eviction scan.
        # The default discipline returns 0 and the yield is skipped, so
        # the two-case path stays byte-identical.
        extra = ni.discipline.kernel_drain_cost(self.costs)
        if extra:
            yield Compute(extra)
        while ni.mismatch_pending:
            head = ni.head
            if not head.is_kernel:
                target = self._target_state(head.gid)
                if target is not None and \
                        self._pinned_queue_full(target, head):
                    # Memory-based backpressure: leave the message in
                    # the network and retry after a delay.
                    self._mismatch_retry = True
                    return
            message = ni.dispose(privileged=True)
            self.in_transit = message
            if message.is_kernel:
                yield from self._dispatch_kernel_message(message)
                self.in_transit = None
                continue
            state = self._target_state(message.gid)
            if state is None:
                self.stats.dropped_unknown_gid += 1
                self.in_transit = None
                continue
            yield from self._insert_into_buffer(state, message)
            self.in_transit = None

    def _target_state(self, gid: int) -> Optional[JobNodeState]:
        job = self.machine.job_by_gid(gid)
        if job is None:
            return None
        return job.node_states.get(self.node.node_id)

    @staticmethod
    def _pinned_queue_full(state: JobNodeState, message: Message) -> bool:
        from repro.glaze.buffering import PinnedQueue

        buffer = state.buffer
        if not isinstance(buffer, PinnedQueue):
            return False
        return (buffer.words_in_use + message.length_words
                > buffer.capacity_words)

    def _insert_into_buffer(self, state: JobNodeState,
                            message: Message) -> Generator:
        """Insert one message into a job's virtual buffer, handling
        page allocation, pool exhaustion and overflow control."""
        from repro.glaze.buffering import PinnedQueue

        if isinstance(state.buffer, PinnedQueue):
            # Memory-based baseline: the hardware demultiplexes into
            # the pinned queue; capacity was checked before dispose.
            yield Compute(self.costs.kernel.hardware_demux)
            state.buffer.insert(message)
            self.node.dma.transfer(message.length_words)
            if self.machine.tracer is not None:
                from repro.analysis.trace import TraceEvent

                self.machine.tracer.record(
                    self.engine.now, TraceEvent.BUFFER_INSERT,
                    message.msg_id, self.node.node_id, "pinned queue",
                )
            self.stats.messages_inserted += 1
            state.job.two_case.buffered_messages += 1
            if state is self.scheduled:
                self._maybe_start_drain(state)
            return
        if state.mode is not DeliveryMode.BUFFERED:
            # First diverted message for a descheduled (or just-revoked)
            # process: it is now in buffered mode.
            reason = (
                TransitionReason.GID_MISMATCH
                if state is not self.scheduled
                else TransitionReason.EXPLICIT
            )
            self.enter_buffered_mode(state, reason)
        while True:
            pages = state.buffer.pages_needed(message)
            if self.node.frame_pool.free_frames >= pages:
                break
            # Guaranteed delivery: page out over the second network.
            yield from self._page_out_for_space(state)
        obs = self.machine.obs
        if obs is not None:
            obs.h_insert_pages.observe(pages)
        cost = self.costs.buffered.insert_cost_pages(pages)
        yield Compute(cost)
        self.stats.insert_cycles += cost
        self.stats.vmalloc_inserts += pages
        state.buffer.insert(message)
        # The message body moves by DMA, costing no processor cycles.
        self.node.dma.transfer(message.length_words)
        if self.machine.tracer is not None:
            from repro.analysis.trace import TraceEvent

            self.machine.tracer.record(
                self.engine.now, TraceEvent.BUFFER_INSERT,
                message.msg_id, self.node.node_id,
                f"gid={message.gid}",
            )
        self.stats.messages_inserted += 1
        state.job.two_case.buffered_messages += 1
        self.machine.overflow.on_insert(self, state)
        if state is self.scheduled:
            self._maybe_start_drain(state)

    def _page_out_for_space(self, state: JobNodeState) -> Generator:
        """The deadlock-free path to backing store (Section 4.2)."""
        self.stats.page_outs += 1
        self.machine.overflow.on_frames_exhausted(self, state)
        # Request the page-out over the reserved second network and wait
        # out the backing-store latency; one frame then frees up.
        self.machine.second_network.send(
            self.node.node_id, self.node.node_id, "page-out",
            {"gid": state.gid}, words=self.machine.config.page_size_words,
        )
        yield Compute(self.costs.kernel.page_out)
        self.node.frame_pool.loan_frame()

    def _dispatch_kernel_message(self, message: Message) -> Generator:
        self.stats.kernel_messages += 1
        service = self._services.get(message.handler)
        if service is None:
            raise GlazeError(
                f"no kernel service {message.handler!r} on node "
                f"{self.node.node_id}"
            )
        yield from service(message)

    # ------------------------------------------------------------------
    # Atomicity-timeout service: revocation
    # ------------------------------------------------------------------
    def _timeout_service(self) -> Generator:
        """Act on an expired atomicity timer.

        Under the default ``REVOKE`` policy: switch from physical
        atomicity (a disabled queue) to virtual atomicity (messages
        buffered and hidden until the atomic section exits). The pending
        message(s) divert into the buffer via the mismatch path the
        moment divert-mode is set.

        Under the optional ``WATCHDOG`` policy (Polling Watchdog): the
        kernel strips the user's interrupt-disable so the pending
        message's user interrupt fires immediately — accelerating
        sluggish polling at the cost of the polling-mode atomicity
        guarantee.
        """
        from repro.core.atomicity import TimeoutPolicy

        yield Compute(self.costs.kernel.mode_transition)
        state = self.scheduled
        if state is None:
            return
        policy = getattr(self.machine.config, "timeout_policy",
                         TimeoutPolicy.REVOKE)
        if policy is TimeoutPolicy.WATCHDOG and self.ni.message_available:
            self.stats.watchdog_fires += 1
            self.ni.uac.interrupt_disable = False
            self.ni.reevaluate()
            return
        self.stats.revocations += 1
        if state.mode is DeliveryMode.FAST:
            self.enter_buffered_mode(state, TransitionReason.ATOMICITY_TIMEOUT)
        # The user keeps the illusion of atomicity; when it ends the
        # endatom traps (atomicity-extend) and the drain thread starts.
        self.ni.set_kernel_uac(atomicity_extend=True)

    # ------------------------------------------------------------------
    # Two-case mode transitions
    # ------------------------------------------------------------------
    def enter_buffered_mode(self, state: JobNodeState,
                            reason: TransitionReason) -> None:
        if state.mode is DeliveryMode.BUFFERED:
            return
        state.mode = DeliveryMode.BUFFERED
        state.job.two_case.note_transition(reason)
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.record_mode(self.engine.now, self.node.node_id,
                               state.gid, True, reason.value)
        obs = self.machine.obs
        if obs is not None:
            obs.note_event("mode-enter", node=self.node.node_id,
                           gid=state.gid, reason=reason.value)
        if state.runtime is not None:
            state.runtime.on_enter_buffered()
        if state is self.scheduled:
            self.ni.set_divert_mode(True)

    def exit_buffered_syscall(self, state: JobNodeState) -> Generator:
        """Runtime syscall: leave buffered mode if the buffer is empty.

        Returns True on success. Runs inline in the calling user frame;
        the empty check and the divert clear happen without a yield in
        between, so no message can slip past the transition.
        """
        yield Compute(self.costs.kernel.mode_transition)
        if self._always_buffered:
            return False  # no fast case in this configuration
        if not state.buffer.empty or state.mode is not DeliveryMode.BUFFERED:
            return False
        state.mode = DeliveryMode.FAST
        state.drain_active = False
        state.job.two_case.transitions_to_fast += 1
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.record_mode(self.engine.now, self.node.node_id,
                               state.gid, False, "drained")
        obs = self.machine.obs
        if obs is not None:
            obs.note_event("mode-exit", node=self.node.node_id,
                           gid=state.gid, reason="drained")
        self.ni.set_kernel_uac(atomicity_extend=False)
        if state.runtime is not None:
            state.runtime.on_exit_buffered()
        if state is self.scheduled:
            self.ni.set_divert_mode(False)
        return True

    # ------------------------------------------------------------------
    # Buffered-mode drain thread management
    # ------------------------------------------------------------------
    def _maybe_start_drain(self, state: JobNodeState) -> None:
        """Create the high-priority message-handling thread if needed.

        Section 4.2: if the application is inside an atomic section (or
        a handler), that thread keeps draining and the kernel merely
        arms atomicity-extend; otherwise a new message-handling thread
        runs the handlers of the buffered messages.
        """
        if (
            state.mode is not DeliveryMode.BUFFERED
            or state is not self.scheduled
            or state.drain_active
            or state.buffer.empty
            or state.runtime is None
        ):
            return
        if self.ni.uac.interrupt_disable:
            # Mid-atomic-section: defer until endatom traps.
            self.ni.set_kernel_uac(atomicity_extend=True)
            return
        state.drain_active = True
        self._push_drain_frame(state)

    def _push_drain_frame(self, state: JobNodeState, attempts: int = 0) -> None:
        """Push the drain thread above the job's current thread.

        Deferred until the processor is at user level; conditions are
        re-verified at push time (the job may have been descheduled).
        """
        self.engine.call_soon(self._try_push_drain, state)

    def _try_push_drain(self, state: JobNodeState) -> None:
        if (
            not state.installed
            or state.mode is not DeliveryMode.BUFFERED
            or state.buffer.empty
        ):
            state.drain_active = False
            return
        if self.processor.in_kernel:
            self.engine.call_after(1, self._try_push_drain, state)
            return
        frame = Frame(
            state.runtime.drain_loop(),
            name=f"drain:{state.job.name}@{self.node.node_id}",
            kernel=False,
            on_done=lambda _res: self._drain_finished(state),
            job_gid=state.gid,
        )
        self.processor.push_frame(frame)

    def _drain_finished(self, state: JobNodeState) -> None:
        state.drain_active = False
        # If messages arrived after the drain checked (and the exit
        # syscall refused), a fresh drain starts.
        self._maybe_start_drain(state)

    # ------------------------------------------------------------------
    # Synchronous traps (run inline in the trapping user frame)
    # ------------------------------------------------------------------
    def service_trap(self, signal: TrapSignal, state: JobNodeState,
                     endatom_mask: int = 0b11) -> Generator:
        """Handle a trap raised by an NI operation in user code."""
        trap = signal.trap
        yield Compute(self.costs.kernel.trap_overhead)
        if trap is Trap.DISPOSE_EXTEND:
            yield from self._trap_dispose_extend(state)
        elif trap is Trap.ATOMICITY_EXTEND:
            self._trap_atomicity_extend(state, endatom_mask)
        elif trap is Trap.PAGE_FAULT:
            yield from self._trap_page_fault(state)
        elif trap is Trap.DISPOSE_FAILURE:
            raise ApplicationProtocolError(
                f"job {state.job.name} ended an atomic section without "
                "freeing the pending message (dispose-failure)"
            )
        elif trap is Trap.BAD_DISPOSE:
            raise ApplicationProtocolError(
                f"job {state.job.name} executed dispose with no pending "
                "message (bad-dispose)"
            )
        elif trap is Trap.PROTECTION_VIOLATION:
            raise ApplicationProtocolError(
                f"job {state.job.name} protection violation: {signal.info}"
            )
        else:  # pragma: no cover - defensive
            raise GlazeError(f"unhandled trap {trap}")

    def _trap_dispose_extend(self, state: JobNodeState) -> Generator:
        """Emulate dispose against the software buffer (Figure 5)."""
        if state.buffer.empty:
            raise ApplicationProtocolError(
                f"job {state.job.name}: dispose-extend with empty buffer"
            )
        state.buffer.pop()
        self.ni.set_kernel_uac(dispose_pending=False)
        yield Compute(0)

    def _trap_atomicity_extend(self, state: JobNodeState, mask: int) -> None:
        """The user's atomic section ended after a revocation: clear the
        flag, complete the endatom, and start the drain thread."""
        self.ni.set_kernel_uac(atomicity_extend=False)
        self.ni.uac.clear_user_bits(mask)
        self.ni.reevaluate()
        self._maybe_start_drain(state)

    def _trap_page_fault(self, state: JobNodeState) -> Generator:
        """A handler touched an unmapped page: switch to buffered mode
        for the duration (the network must not stay blocked)."""
        self.stats.page_faults += 1
        state.job.stats.page_faults_simulated += 1
        if state.mode is DeliveryMode.FAST:
            self.enter_buffered_mode(state, TransitionReason.PAGE_FAULT)
        # Zero-fill service time: map the page and return to the user.
        # With the frame pool dry, the page is reclaimed from the job's
        # own working set instead (a soft fault) — a fault storm must
        # degrade, not crash, and the remaining frames stay contended
        # by virtual buffering under its own overflow control.
        if state.space.pool.free_frames > 0:
            state.space.map_fresh_page()
        yield Compute(self.costs.kernel.page_out // 10)

    # ------------------------------------------------------------------
    # Context switching (driven by the gang scheduler)
    # ------------------------------------------------------------------
    def context_switch_factory(self) -> Frame:
        return Frame(
            self._context_switch(), name=f"k:cswitch@{self.node.node_id}",
            kernel=True,
        )

    def _context_switch(self) -> Generator:
        self.stats.context_switches += 1
        yield Compute(self.costs.kernel.context_switch)
        old = self.scheduled
        if old is not None:
            self._save_job(old)
        new = self.machine.scheduler.pick_next(self.node.node_id)
        self.scheduled = new
        if new is None:
            self.ni.set_current_gid(KERNEL_GID)
            return
        self._install_job(new)

    def _save_job(self, state: JobNodeState) -> None:
        processor = self.processor
        state.frames = processor.capture_user_frames()
        uac = self.ni.uac
        state.uac_saved = uac.snapshot()
        uac.interrupt_disable = False
        uac.timer_force = False
        self.ni.set_kernel_uac(dispose_pending=False, atomicity_extend=False)
        state.installed = False
        state.job.stats.scheduled_cycles += self.engine.now - state.installed_at

    def _install_job(self, state: JobNodeState) -> None:
        ni = self.ni
        state.installed = True
        state.installed_at = self.engine.now
        ni.set_current_gid(state.gid)
        ni.uac.restore(state.uac_saved)
        if self._always_buffered and state.mode is DeliveryMode.FAST:
            self.enter_buffered_mode(state, TransitionReason.EXPLICIT)
        if state.mode is DeliveryMode.FAST and not state.buffer.empty:
            # Messages accumulated while descheduled: begin the quantum
            # in buffered mode (Section 4.3, "Mode Transition").
            self.enter_buffered_mode(state, TransitionReason.QUANTUM_START)
        else:
            ni.set_divert_mode(state.mode is DeliveryMode.BUFFERED)
        if state.frames:
            frames, state.frames = state.frames, []
            self.processor.install_user_frames(frames)
        self._maybe_start_drain(state)
        ni.reevaluate()
