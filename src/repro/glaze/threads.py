"""User-level threads for UDM applications.

The UDM model "assumes an execution model in which one or more threads
run on each processor ... UDM is compatible with extremely lightweight
thread systems in which message handlers are occasionally or routinely
converted to threads after executing only the minimal code required to
communicate with the network interface" (Section 3).

This module provides that thread system as a cooperative, user-level
library an application main thread hosts: threads are generator
coroutines scheduled by priority and round-robin within a priority,
with ``Compute``/Event yields passing straight through to the
processor. It is the application-visible counterpart of the
buffered-mode "message-handling thread" machinery (which the kernel
implements directly with processor frames); here it lets applications
convert handlers to threads, overlap waiting with work, and build the
handler-spawns-worker pattern the paper describes.

Usage (inside an application's ``main``)::

    threads = UserThreadLib()
    threads.spawn(worker_a(rt), name="a")
    threads.spawn(worker_b(rt), name="b", priority=1)
    yield from threads.run()          # until every thread finishes

Handlers may call ``threads.spawn`` (it is a plain function), which is
exactly "converting a handler to a thread": the handler does the
minimal NI work and hands the rest to the scheduler.
"""

from __future__ import annotations

import itertools
from typing import Any, Generator, List, Optional

from repro.machine.processor import Compute
from repro.sim.events import Event

_thread_ids = itertools.count(1)


class Thread:
    """One user-level thread: a generator plus scheduling state."""

    __slots__ = ("tid", "name", "gen", "priority", "state", "result",
                 "done", "_wait_event", "_wake_value")

    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    FINISHED = "finished"

    def __init__(self, gen: Generator, name: str = "",
                 priority: int = 0) -> None:
        self.tid = next(_thread_ids)
        self.name = name or f"thread-{self.tid}"
        self.gen = gen
        self.priority = priority
        self.state = Thread.RUNNABLE
        self.result: Any = None
        self.done = Event(f"{self.name}.done")
        self._wait_event: Optional[Event] = None
        self._wake_value: Any = None

    @property
    def finished(self) -> bool:
        return self.state == Thread.FINISHED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Thread {self.name} {self.state} prio={self.priority}>"


class Yield:
    """Yielded by a thread to give other runnable threads a turn."""

    __slots__ = ()


#: Singleton the library recognizes; threads do ``yield THREAD_YIELD``.
THREAD_YIELD = Yield()


class UserThreadLib:
    """A cooperative priority scheduler hosted in one processor frame.

    Threads yield the same operations as any frame (``Compute``,
    ``Event``) plus ``THREAD_YIELD``. Compute runs on the hosting
    frame — cooperative, like the paper's user-level thread systems —
    while Event waits release the processor to *other threads*: the
    scheduler keeps running runnable work and only blocks the hosting
    frame when every thread is waiting.
    """

    def __init__(self) -> None:
        self._threads: List[Thread] = []
        self._wakeup: Optional[Event] = None
        self.context_switches = 0

    # ------------------------------------------------------------------
    # Thread management (plain functions: callable from handlers)
    # ------------------------------------------------------------------
    def spawn(self, gen: Generator, name: str = "",
              priority: int = 0) -> Thread:
        """Create a runnable thread; scheduling starts at ``run``."""
        thread = Thread(gen, name=name, priority=priority)
        self._threads.append(thread)
        self._signal()
        return thread

    @property
    def alive(self) -> List[Thread]:
        return [t for t in self._threads if not t.finished]

    def _runnable(self) -> Optional[Thread]:
        best: Optional[Thread] = None
        for thread in self._threads:
            if thread.state != Thread.RUNNABLE:
                continue
            if best is None or thread.priority > best.priority:
                best = thread
        return best

    def _signal(self) -> None:
        """Wake the scheduler loop if it is blocked."""
        if self._wakeup is not None and not self._wakeup.triggered:
            wakeup, self._wakeup = self._wakeup, None
            wakeup.trigger()

    # ------------------------------------------------------------------
    # The scheduler loop (hosted by the application's main frame)
    # ------------------------------------------------------------------
    def run(self, until_idle: bool = True) -> Generator:
        """Run threads until all finish (``until_idle``) or forever.

        Round-robin within the highest priority: after each step the
        stepped thread moves behind its priority peers, implemented by
        list rotation.
        """
        while True:
            thread = self._runnable()
            if thread is None:
                if until_idle and not self.alive:
                    return
                # Everything is blocked: release the processor until a
                # wakeup (event completion or a new spawn).
                self._wakeup = Event("threadlib.wakeup")
                yield self._wakeup
                continue
            yield from self._step(thread)

    def _step(self, thread: Thread) -> Generator:
        """Advance one thread by one yield."""
        self.context_switches += 1
        # Rotate for round-robin fairness among equal priorities.
        self._threads.remove(thread)
        self._threads.append(thread)
        send_value, thread._wake_value = thread._wake_value, None
        while True:
            try:
                op = thread.gen.send(send_value)
            except StopIteration as stop:
                thread.state = Thread.FINISHED
                thread.result = stop.value
                thread.done.trigger(stop.value)
                return
            if isinstance(op, Compute):
                # Cooperative: compute runs on the hosting frame, and
                # completing it is a scheduling point — otherwise a
                # compute-looping thread would starve its peers.
                yield op
                return
            if isinstance(op, Yield):
                yield Compute(1)  # the reschedule itself costs a cycle
                return
            if isinstance(op, Event):
                if op.triggered:
                    send_value = op.value
                    continue
                thread.state = Thread.BLOCKED
                thread._wait_event = op
                op.subscribe(lambda v, t=thread: self._unblock(t, v))
                return
            raise TypeError(
                f"thread {thread.name} yielded unsupported {op!r}"
            )

    def _unblock(self, thread: Thread, value: Any) -> None:
        thread._wait_event = None
        thread._wake_value = value
        thread.state = Thread.RUNNABLE
        self._signal()

    # ------------------------------------------------------------------
    # Joining
    # ------------------------------------------------------------------
    @staticmethod
    def join(thread: Thread) -> Generator:
        """Block (as a thread op) until ``thread`` finishes."""
        if not thread.finished:
            yield thread.done
        return thread.result
