"""Glaze: the behavioural model of FUGU's multiuser operating system.

Glaze (built on the Aegis exokernel in the original system) supplies the
software half of two-case delivery:

* per-node kernels servicing the NI's interrupts and traps
  (:mod:`repro.glaze.kernel`);
* virtual buffering — software message buffers in application virtual
  memory, with demand-allocated physical pages
  (:mod:`repro.glaze.buffering`, :mod:`repro.glaze.vm`);
* a loose gang scheduler with controllable clock skew
  (:mod:`repro.glaze.scheduler`);
* overflow control feeding buffer pressure back into scheduling
  (:mod:`repro.glaze.overflow`);
* job and per-node job state (:mod:`repro.glaze.jobs`).
"""

from repro.glaze.vm import PageFramePool, AddressSpace, OutOfFrames
from repro.glaze.buffering import BufferFull, PinnedQueue, VirtualBuffer
from repro.glaze.jobs import Job, JobNodeState
from repro.glaze.kernel import NodeKernel
from repro.glaze.scheduler import GangScheduler
from repro.glaze.overflow import OverflowControl, OverflowPolicy
from repro.glaze.threads import THREAD_YIELD, Thread, UserThreadLib

__all__ = [
    "PageFramePool",
    "AddressSpace",
    "OutOfFrames",
    "BufferFull",
    "PinnedQueue",
    "VirtualBuffer",
    "Job",
    "JobNodeState",
    "NodeKernel",
    "GangScheduler",
    "OverflowControl",
    "OverflowPolicy",
    "THREAD_YIELD",
    "Thread",
    "UserThreadLib",
]
