"""Physical page frames and demand-paged address spaces.

Virtual buffering's defining property is that the software buffer lives
in *virtual* memory: physical frames back it only on demand, and the
frame pool is shared with every other consumer of memory on the node.
This module provides that substrate:

* :class:`PageFramePool` — the per-node pool of physical page frames,
  with high-water accounting (the "maximum number of physical pages
  required during any run" statistic of Section 5.1);
* :class:`AddressSpace` — a per-job, per-node demand-zero virtual
  address space (Glaze "does not support paging to disk, but does
  support faults to pages that are allocated and zero-filled on
  demand"). The buffer allocator and application page-fault simulation
  both draw from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set


class OutOfFrames(Exception):
    """Raised when an allocation finds the physical frame pool empty.

    The buffer-insertion path catches this and takes the guaranteed
    (second-network) path to backing store — or invokes overflow
    control.
    """


@dataclass
class FramePoolStats:
    allocations: int = 0
    releases: int = 0
    failures: int = 0
    min_free: int = 0

    def reset_watermark(self, free: int) -> None:
        self.min_free = free


class PageFramePool:
    """The pool of physical page frames on one node."""

    def __init__(self, node_id: int, total_frames: int) -> None:
        if total_frames < 1:
            raise ValueError("a node needs at least one page frame")
        self.node_id = node_id
        self.total_frames = total_frames
        self.free_frames = total_frames
        #: Frames reclaimed from other memory consumers by paging their
        #: contents to backing store; repaid as frames free up.
        self.loaned_frames = 0
        self.stats = FramePoolStats(min_free=total_frames)

    def allocate(self) -> None:
        """Take one frame; raises :class:`OutOfFrames` when exhausted."""
        if self.free_frames == 0:
            self.stats.failures += 1
            raise OutOfFrames(f"node {self.node_id}: frame pool empty")
        self.free_frames -= 1
        self.stats.allocations += 1
        if self.free_frames < self.stats.min_free:
            self.stats.min_free = self.free_frames

    def loan_frame(self) -> None:
        """A page-out reclaimed a frame from some other consumer (file
        cache, another job's cold page). The loan is repaid — the
        evicted page notionally paged back in — as frames release."""
        self.loaned_frames += 1
        self.free_frames += 1

    def release(self, count: int = 1) -> None:
        if count < 0:
            raise ValueError("cannot release a negative frame count")
        for _ in range(count):
            if self.loaned_frames > 0:
                self.loaned_frames -= 1  # repay the page-out loan
            else:
                self.free_frames += 1
        if self.free_frames > self.total_frames:
            raise ValueError(
                f"node {self.node_id}: releasing {count} frames exceeded "
                f"the pool size"
            )
        self.stats.releases += count

    @property
    def frames_in_use(self) -> int:
        return self.total_frames - self.free_frames

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PageFramePool node={self.node_id} "
            f"free={self.free_frames}/{self.total_frames}>"
        )


class AddressSpace:
    """A demand-zero virtual address space for one job on one node.

    Pages are identified by virtual page number. Touching an unmapped
    page "faults" and maps a zero-filled page backed by a physical
    frame. The space tracks which pages belong to the message buffer so
    buffer accounting can be audited independently.
    """

    def __init__(self, pool: PageFramePool, page_size_words: int = 1024) -> None:
        if page_size_words < 16:
            raise ValueError("page must hold at least one max-size message")
        self.pool = pool
        self.page_size_words = page_size_words
        self._mapped: Set[int] = set()
        self._next_vpn = 0
        self.faults = 0

    def map_fresh_page(self) -> int:
        """Allocate a new zero-filled page; returns its virtual page
        number. Raises :class:`OutOfFrames` if no frame is available."""
        self.pool.allocate()
        vpn = self._next_vpn
        self._next_vpn += 1
        self._mapped.add(vpn)
        self.faults += 1
        return vpn

    def unmap_page(self, vpn: int) -> None:
        """Release a page and its backing frame."""
        if vpn not in self._mapped:
            raise KeyError(f"page {vpn} not mapped")
        self._mapped.remove(vpn)
        self.pool.release()

    @property
    def mapped_pages(self) -> int:
        return len(self._mapped)

    def is_mapped(self, vpn: int) -> bool:
        return vpn in self._mapped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AddressSpace pages={len(self._mapped)}>"
