"""Jobs (process groups) and their per-node state.

A :class:`Job` is one parallel application: a GID-labelled group of
processes, one per node (the paper's "virtual processors"). Each node
holds a :class:`JobNodeState` carrying everything the kernel needs to
gang-switch the job in and out: the saved user frames, the saved user
UAC bits, the delivery mode, and the virtual software buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.two_case import DeliveryMode, TwoCaseStats
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.glaze.buffering import VirtualBuffer
    from repro.glaze.vm import AddressSpace
    from repro.machine.processor import Frame
    from repro.core.udm import UdmRuntime


@dataclass
class JobStats:
    """Whole-job counters beyond the two-case statistics."""

    messages_sent: int = 0
    handler_invocations: int = 0
    handler_cycles: int = 0
    scheduled_cycles: int = 0
    page_faults_simulated: int = 0

    @property
    def mean_handler_cycles(self) -> float:
        if not self.handler_invocations:
            return 0.0
        return self.handler_cycles / self.handler_invocations


class JobNodeState:
    """Per-node, per-job kernel state."""

    def __init__(self, job: "Job", node_id: int, space: "AddressSpace",
                 buffer: "VirtualBuffer") -> None:
        self.job = job
        self.node_id = node_id
        self.space = space
        self.buffer = buffer
        self.mode: DeliveryMode = DeliveryMode.FAST
        #: Saved user frames while the job is descheduled on this node.
        self.frames: List["Frame"] = []
        #: Saved UAC register (user bits plus kernel bits).
        self.uac_saved: Dict[str, bool] = {
            "interrupt_disable": False, "timer_force": False,
            "dispose_pending": False, "atomicity_extend": False,
        }
        self.installed = False
        self.installed_at = 0
        self.drain_active = False
        self.main_finished = False
        #: Cycle at which this node's main returned (None while running);
        #: the shard coordinator merges per-node finish times into the
        #: whole-job finish time, so it must match the monolithic value.
        self.main_finish_time: Optional[int] = None
        self.runtime: Optional["UdmRuntime"] = None

    @property
    def gid(self) -> int:
        return self.job.gid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<JobNodeState {self.job.name}@{self.node_id} "
            f"{self.mode.value} installed={self.installed}>"
        )


class Job:
    """One gang-scheduled parallel application."""

    def __init__(self, name: str, gid: int, num_nodes: int) -> None:
        self.name = name
        self.gid = gid
        self.num_nodes = num_nodes
        self.node_states: Dict[int, JobNodeState] = {}
        self.two_case = TwoCaseStats()
        self.stats = JobStats()
        self.suspended = False
        self.needs_gang_advice = False
        self.start_time: Optional[int] = None
        self.finish_time: Optional[int] = None
        self.done = Event(f"job:{name}.done")

    @property
    def finished(self) -> bool:
        return self.done.triggered

    def note_node_main_finished(self, node_id: int, now: int) -> None:
        state = self.node_states[node_id]
        if state.main_finished:
            return
        state.main_finished = True
        state.main_finish_time = now
        if all(s.main_finished for s in self.node_states.values()):
            self.finish_time = now
            self.done.trigger(now)

    @property
    def elapsed_cycles(self) -> Optional[int]:
        if self.start_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.start_time

    def max_buffer_pages(self) -> int:
        """High-water physical buffer pages on any node (Section 5.1)."""
        if not self.node_states:
            return 0
        return max(s.buffer.stats.max_pages for s in self.node_states.values())

    def total_buffer_pages_now(self) -> int:
        return sum(s.buffer.pages_in_use for s in self.node_states.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Job {self.name} gid={self.gid} nodes={self.num_nodes}>"
