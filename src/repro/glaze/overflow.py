"""Overflow control: feedback from buffering to the scheduler.

Section 4.2: "Excessive demand for virtual buffering in our system is
analogous to thrashing of virtual memory. Accordingly, we employ a
technique reminiscent of the anti-thrashing strategy in Unix: we
identify the offending application and take gross control of its
scheduling. First, an application on the verge of exhausting physical
memory is globally suspended while paging clears out space on the node.
Second, a well-behaved application will recover from buffering if gang
scheduled, so the buffering system advises the scheduler to gang
schedule the application."

The policy here implements both actions: global suspension (propagated
to every node over the second network, then enacted by the scheduler)
when a job's buffer footprint crosses the suspension threshold or the
frame pool runs dry, and a gang-scheduling advisory flag at a lower
threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.glaze.jobs import JobNodeState
    from repro.glaze.kernel import NodeKernel


@dataclass(frozen=True)
class OverflowPolicy:
    """Thresholds for the anti-thrashing actions."""

    #: Buffer pages on one node above which the scheduler is advised to
    #: gang-schedule the job (the cheap, advisory action).
    advise_pages: int = 8
    #: Buffer pages on one node above which the job is globally
    #: suspended while paging clears space.
    suspend_pages: int = 32
    #: How long a suspension lasts, in cycles.
    suspend_duration: int = 2_000_000


@dataclass
class OverflowStats:
    advisories: int = 0
    suspensions: int = 0
    exhaustion_events: int = 0


class OverflowControl:
    """Machine-wide overflow controller."""

    def __init__(self, policy: OverflowPolicy) -> None:
        self.policy = policy
        self.stats = OverflowStats()

    def on_insert(self, kernel: "NodeKernel", state: "JobNodeState") -> None:
        """Called after every buffer insertion."""
        pages = state.buffer.pages_in_use
        job = state.job
        if pages >= self.policy.advise_pages and not job.needs_gang_advice:
            self.stats.advisories += 1
            obs = getattr(kernel.machine, "obs", None)
            if obs is not None:
                obs.note_event("overflow-advise",
                               node=kernel.node.node_id,
                               gid=state.gid, pages=pages)
            kernel.machine.scheduler.advise_gang(job)
        if pages >= self.policy.suspend_pages and not job.suspended:
            self._suspend_globally(kernel, state)

    def on_frames_exhausted(self, kernel: "NodeKernel",
                            state: "JobNodeState") -> None:
        """Called when an insertion finds the frame pool empty."""
        self.stats.exhaustion_events += 1
        obs = getattr(kernel.machine, "obs", None)
        if obs is not None:
            obs.note_event("overflow-exhausted",
                           node=kernel.node.node_id, gid=state.gid)
        if not state.job.suspended:
            self._suspend_globally(kernel, state)

    def _suspend_globally(self, kernel: "NodeKernel",
                          state: "JobNodeState") -> None:
        self.stats.suspensions += 1
        machine = kernel.machine
        obs = getattr(machine, "obs", None)
        if obs is not None:
            obs.note_event(
                "overflow-suspend", node=kernel.node.node_id,
                gid=state.gid, pages=state.buffer.pages_in_use,
            )
        machine.scheduler.suspend_job(state.job,
                                      self.policy.suspend_duration)
        # Propagate the suspension decision to the other nodes over the
        # reserved network so their schedulers agree quickly.
        for node in machine.nodes:
            if node.node_id != kernel.node.node_id:
                machine.second_network.send(
                    kernel.node.node_id, node.node_id, "suspend-job",
                    {"gid": state.gid},
                )
