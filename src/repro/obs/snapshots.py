"""Periodic on-timeline snapshots of machine state.

The :class:`TimelineSampler` rides the event heap: every
``interval`` simulated cycles it records a point-in-time view of the
quantities the paper plots against time — live buffer pages (the
Section 5.1 "less than seven pages/node" series), software-buffer
queue depths, NI hardware input-queue occupancy, messages blocked in
the network, armed atomicity timers and suspended jobs.

Samples are read-only: taking one never mutates simulation state, so a
run with sampling enabled produces bit-identical
:class:`~repro.analysis.metrics.RunMetrics` to the same run without it
(the overhead guard test enforces this). Sampling stops once every job
has finished (so the event heap can drain) or when ``limit`` samples
have accumulated (so cached payloads stay bounded).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


def take_sample(machine) -> Dict[str, Any]:
    """One read-only snapshot of ``machine`` at the current time."""
    buffer_pages = 0
    queued_messages = 0
    for job in machine.jobs:
        for state in job.node_states.values():
            buffer_pages += state.buffer.pages_in_use
            queued_messages += len(state.buffer)
    ni_queue = 0
    net_blocked = 0
    timers_armed = 0
    for node in machine.nodes:
        ni_queue += node.ni.input_queue_length
        net_blocked += machine.fabric.blocked_count(node.node_id)
        if node.ni.timer.enabled:
            timers_armed += 1
    return {
        "t": machine.engine.now,
        "events": machine.engine.events_executed,
        "buffer_pages": buffer_pages,
        "queued_messages": queued_messages,
        "ni_queue": ni_queue,
        "net_blocked": net_blocked,
        "timers_armed": timers_armed,
        "suspended_jobs": sum(1 for job in machine.jobs if job.suspended),
    }


class TimelineSampler:
    """Schedules :func:`take_sample` every ``interval`` cycles."""

    def __init__(self, machine, interval: int,
                 limit: int = 2048) -> None:
        if interval <= 0:
            raise ValueError("sample interval must be positive")
        self.machine = machine
        self.interval = int(interval)
        self.limit = limit
        self.samples: List[Dict[str, Any]] = []
        self.truncated = False
        self._running = False

    def start(self) -> None:
        """Take the first sample now and keep sampling on-interval."""
        if self._running:
            return
        self._running = True
        self.machine.engine.call_at(self.machine.engine.now, self._tick)

    def _tick(self) -> None:
        if len(self.samples) >= self.limit:
            self.truncated = True
            self._running = False
            return
        self.samples.append(take_sample(self.machine))
        jobs = self.machine.jobs
        if jobs and all(job.finished for job in jobs):
            # Nothing left to observe; stop so the heap can drain.
            self._running = False
            return
        self.machine.engine.call_after(self.interval, self._tick)

    def final_sample(self) -> Optional[Dict[str, Any]]:
        """Append an end-of-run sample unless one exists at this time."""
        now = self.machine.engine.now
        if self.samples and self.samples[-1]["t"] == now:
            return None
        if len(self.samples) >= self.limit:
            self.truncated = True
            return None
        sample = take_sample(self.machine)
        self.samples.append(sample)
        return sample


__all__ = ["TimelineSampler", "take_sample"]
