"""Opt-in wall-clock profiler for the engine hot loop.

Attaching an :class:`EngineProfiler` shadows ``engine.call_at`` with a
wrapper that times every executed callback and buckets the wall-clock
cost by the callback's defining subsystem (the first two components of
its ``__module__``, e.g. ``repro.sim``, ``repro.glaze``). Detaching
restores the original method.

This is strictly a wall-clock instrument: it never touches simulated
time, event ordering or any simulation state, so profiled runs produce
identical metrics — just slower. It exists for
``benchmarks/perf_smoke.py``, which reports per-subsystem shares and
cycles-simulated-per-second into ``BENCH_obs.json``; keep it out of
measured (non-profiling) benchmark passes, since wrapping every
callback costs real time.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List

from repro.sim.engine import _NO_ARG


def _subsystem(fn: Callable) -> str:
    module = getattr(fn, "__module__", None)
    if not module:
        return "unknown"
    parts = module.split(".")
    return ".".join(parts[:2])


class EngineProfiler:
    """Times executed callbacks, bucketed by scheduling subsystem."""

    def __init__(self, engine, clock: Callable[[], float] = time.perf_counter
                 ) -> None:
        self.engine = engine
        self.clock = clock
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        self._attached = False

    # ------------------------------------------------------------------
    def attach(self) -> "EngineProfiler":
        """Shadow ``engine.call_at`` and ``engine.schedule`` with the
        timing wrappers."""
        if self._attached:
            return self
        original_call_at = self.engine.call_at    # bound class methods
        original_schedule = self.engine.schedule
        clock = self.clock
        seconds = self.seconds
        calls = self.calls

        def wrap(fn: Callable, arg: Any) -> Callable[[], None]:
            key = _subsystem(fn)

            def timed() -> None:
                start = clock()
                try:
                    if arg is _NO_ARG:
                        fn()
                    else:
                        fn(arg)
                finally:
                    seconds[key] = seconds.get(key, 0.0) + (clock() - start)
                    calls[key] = calls.get(key, 0) + 1

            return timed

        def profiled_call_at(when: int, fn: Callable, arg: Any = _NO_ARG):
            return original_call_at(when, wrap(fn, arg))

        def profiled_schedule(when: int, fn: Callable, arg: Any = _NO_ARG):
            return original_schedule(when, wrap(fn, arg))

        # Instance attributes shadow the class methods; everything that
        # schedules through this engine (call_after, call_soon, timeout,
        # processes) funnels into one of these two, so the pair covers
        # the machine. Setting ``_shadowed`` makes processes route their
        # inlined Delay resumes back through ``engine.schedule`` so the
        # wrappers see those too.
        self.engine.call_at = profiled_call_at
        self.engine.schedule = profiled_schedule
        self.engine._shadowed = True
        self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            del self.engine.call_at  # un-shadow the class methods
            del self.engine.schedule
            self.engine._shadowed = False
            self._attached = False

    def __enter__(self) -> "EngineProfiler":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # ------------------------------------------------------------------
    def report(self, wall_seconds: float = 0.0) -> Dict[str, Any]:
        """Per-subsystem shares, JSON-ready.

        ``wall_seconds`` (the caller's end-to-end measurement) adds a
        cycles-simulated-per-second figure for the whole run.
        """
        timed_total = sum(self.seconds.values())
        rows: List[Dict[str, Any]] = []
        for key in sorted(self.seconds, key=self.seconds.get,
                          reverse=True):
            rows.append({
                "subsystem": key,
                "seconds": self.seconds[key],
                "calls": self.calls[key],
                "share": (self.seconds[key] / timed_total
                          if timed_total else 0.0),
            })
        out: Dict[str, Any] = {
            "timed_seconds": timed_total,
            "subsystems": rows,
        }
        if wall_seconds > 0:
            out["wall_seconds"] = wall_seconds
            out["cycles_per_second"] = self.engine.now / wall_seconds
        return out


__all__ = ["EngineProfiler"]
