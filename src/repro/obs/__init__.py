"""Unified observability for the simulated machine (``repro.obs``).

One :class:`Observatory` per machine owns:

* a typed :class:`~repro.obs.registry.MetricRegistry` declaring the
  full metric taxonomy up front — counters/gauges/histograms for the
  engine, fabric, NIs, kernel, virtual buffering, overflow control,
  two-case delivery and the reliable transport;
* live histogram hooks in the hot paths (fabric send/deliver, NI
  accept, kernel buffer insert), each guarded by the tracer's
  ``if obs is not None`` contract so disabled runs pay one ``None``
  check;
* a :class:`~repro.obs.snapshots.TimelineSampler` for periodic
  on-timeline state snapshots;
* a bounded event log for rare, discrete occurrences (mode
  transitions, overflow actions);
* an end-of-run :meth:`Observatory.finalize` harvest that copies every
  authoritative ``stats`` object into the registry — the single place
  that touches every declared counter, which is what lets
  ``registry.unwired()`` prove nothing is silently left at zero.

The whole payload (:meth:`Observatory.payload`) is JSON scalars only,
so it rides ``RunResult.extra`` through the persistent result cache
bit-identically. See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.two_case import TransitionReason
from repro.obs.export import (render_obs_report, sparkline, write_jsonl,
                              write_validation_jsonl)
from repro.obs.profiler import EngineProfiler
from repro.obs.registry import (Counter, DuplicateMetric, Gauge, Histogram,
                                MetricRegistry)
from repro.obs.snapshots import TimelineSampler, take_sample

#: Default timeline sampling period, in simulated cycles.
DEFAULT_SAMPLE_INTERVAL = 100_000


class Observatory:
    """All observability state for one :class:`~repro.machine.machine.Machine`."""

    def __init__(self, machine, sample_interval: Optional[int] = None,
                 snapshot_limit: int = 2048,
                 event_limit: int = 10_000) -> None:
        self.machine = machine
        self.registry = MetricRegistry()
        self.sample_interval = sample_interval
        self.sampler: Optional[TimelineSampler] = None
        if sample_interval is not None:
            self.sampler = TimelineSampler(machine, sample_interval,
                                           limit=snapshot_limit)
        self.event_limit = event_limit
        self.events: List[Dict[str, Any]] = []
        self.events_dropped = 0
        self._finalized = False
        self._declare()

    # ------------------------------------------------------------------
    # Metric taxonomy
    # ------------------------------------------------------------------
    def _declare(self) -> None:
        reg = self.registry
        # Live histograms (hot-path hooks; distributions that no stats
        # object retains).
        self.h_message_words = reg.histogram(
            "fabric.message_words", (4, 8, 16, 32, 64, 256, 1024),
            "wire length of launched messages")
        self.h_delivery_latency = reg.histogram(
            "fabric.delivery_latency", (16, 32, 64, 128, 256, 512, 1024,
                                        4096),
            "inject-to-NI latency, cycles")
        self.h_input_queue = reg.histogram(
            "ni.input_queue_depth", (1, 2, 3, 4, 8),
            "input-queue occupancy after each accepted delivery")
        self.h_insert_pages = reg.histogram(
            "kernel.insert_pages", (0, 1, 2, 4, 8),
            "fresh pages mapped per virtual-buffer insert")
        # Counters and gauges, harvested authoritatively in finalize().
        for name in (
            "engine.events", "engine.compactions", "engine.runq_events",
            "engine.ring_events", "engine.overflow_scheduled",
            "engine.cycle_batches",
            "fabric.messages_sent", "fabric.messages_delivered",
            "fabric.words_carried", "fabric.sender_blocks",
            "fabric.messages_dropped", "fabric.messages_duplicated",
            "fabric.latency_spikes",
            "fabric.fast_path_sends", "fabric.general_path_sends",
            "ni.fast_deliveries", "ni.general_deliveries",
            "ni.delivered_to_user", "ni.delivered_to_kernel",
            "ni.upcalls", "ni.mismatch_interrupts",
            "ni.atomicity_timeouts", "ni.input_stalls",
            "ni.forced_timeouts",
            "delivery.zerocopy_accepts", "delivery.fault_traps",
            "delivery.fallbacks", "delivery.damq_admits",
            "delivery.damq_evictions", "delivery.damq_share_refusals",
            "kernel.mismatch_services", "kernel.messages_inserted",
            "kernel.insert_cycles", "kernel.vmalloc_inserts",
            "kernel.dropped_unknown_gid", "kernel.revocations",
            "kernel.watchdog_fires", "kernel.page_faults",
            "kernel.page_outs", "kernel.context_switches",
            "kernel.kernel_messages",
            "buffering.inserted", "buffering.consumed",
            "buffering.pages_allocated", "buffering.pages_released",
            "overflow.advisories", "overflow.suspensions",
            "overflow.exhaustions",
            "two_case.fast_messages", "two_case.buffered_messages",
            "two_case.transitions_to_fast",
            "transport.sends", "transport.retransmissions",
            "transport.acks_sent", "transport.duplicates_suppressed",
            "transport.gave_up",
            "mailbox.submitted", "mailbox.absorbed", "mailbox.enqueued",
            "mailbox.retrieved", "mailbox.delivered",
            "mailbox.overflow_drops", "mailbox.duplicates_suppressed",
            "mailbox.client_duplicates", "mailbox.reconnects",
            "mailbox.replays", "mailbox.crashes",
            "mailbox.crash_losses", "mailbox.flows_created",
            "mailbox.flows_evicted", "mailbox.dedup_evictions",
            "shard.epochs", "shard.cross_shard_messages",
            "shard.barrier_stalls", "shard.serial_fallbacks",
            "shard.bytes_exchanged", "shard.empty_epochs_coalesced",
        ):
            reg.counter(name)
        from repro.apps.mailbox import RETRIEVAL_LATENCY_EDGES

        self.h_retrieval_latency = reg.histogram(
            "mailbox.retrieval_latency", RETRIEVAL_LATENCY_EDGES,
            "mailbox enqueue-to-gateway-delivery latency, cycles")
        for reason in TransitionReason:
            reg.counter(f"two_case.enter.{reason.value}")
        for name in (
            "engine.pending",
            "fabric.max_backlog", "fabric.mean_latency",
            "ni.max_input_queue",
            "delivery.pinned_pages_peak", "delivery.damq_peak_occupancy",
            "buffering.max_pages", "buffering.max_queued_messages",
            "two_case.buffered_fraction",
            "mailbox.occupancy_peak", "mailbox.active_flows_peak",
            "shard.encode_seconds",
        ):
            reg.gauge(name)

    # ------------------------------------------------------------------
    # Event log (rare, discrete occurrences)
    # ------------------------------------------------------------------
    def note_event(self, kind: str, **fields: Any) -> None:
        if len(self.events) >= self.event_limit:
            self.events_dropped += 1
            return
        self.events.append({"t": self.machine.engine.now, "kind": kind,
                            **fields})

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin timeline sampling (called from ``Machine.start``)."""
        if self.sampler is not None:
            self.sampler.start()

    def finalize(self) -> MetricRegistry:
        """Harvest every authoritative stats object into the registry.

        Idempotent (totals overwrite); touches every declared counter
        and gauge, so ``registry.unwired(("counter", "gauge"))`` after
        finalize is the no-silent-zero assertion.
        """
        machine = self.machine
        reg = self.registry

        def total(name: str, value) -> None:
            reg.get(name).set_total(value)

        def gauge(name: str, value) -> None:
            reg.get(name).set(value)

        engine = machine.engine
        total("engine.events", engine.events_executed)
        total("engine.compactions", engine.compactions)
        # Observability itself is a fast-path disturbance (the live
        # histograms re-engage the general paths in fabric and NI), so
        # in observed runs the fabric/NI fast counters read 0 and only
        # the engine run queue stays hot — the counters exist to show
        # exactly that two-case trade-off.
        total("engine.runq_events", engine.runq_events)
        # Calendar-queue tiers: bucket hits vs far-future overflow-heap
        # entries, and how coarse the per-cycle batching ran.
        total("engine.ring_events", engine.ring_events)
        total("engine.overflow_scheduled", engine.overflow_scheduled)
        total("engine.cycle_batches", engine.cycle_batches)
        gauge("engine.pending", engine.pending)

        fab = machine.fabric.stats
        total("fabric.messages_sent", fab.messages_sent)
        total("fabric.messages_delivered", fab.messages_delivered)
        total("fabric.words_carried", fab.words_carried)
        total("fabric.sender_blocks", fab.sender_blocks)
        total("fabric.messages_dropped", fab.messages_dropped)
        total("fabric.messages_duplicated", fab.messages_duplicated)
        total("fabric.latency_spikes", fab.latency_spikes)
        total("fabric.fast_path_sends", fab.fast_path_sends)
        total("fabric.general_path_sends", fab.general_path_sends)
        gauge("fabric.max_backlog",
              max(fab.max_backlog.values()) if fab.max_backlog else 0)
        gauge("fabric.mean_latency", fab.mean_latency)

        nodes = machine.nodes
        total("ni.fast_deliveries",
              sum(n.ni.stats.fast_deliveries for n in nodes))
        total("ni.general_deliveries",
              sum(n.ni.stats.general_deliveries for n in nodes))
        total("ni.delivered_to_user",
              sum(n.ni.stats.delivered_to_user for n in nodes))
        total("ni.delivered_to_kernel",
              sum(n.ni.stats.delivered_to_kernel for n in nodes))
        total("ni.upcalls",
              sum(n.ni.stats.message_available_upcalls for n in nodes))
        total("ni.mismatch_interrupts",
              sum(n.ni.stats.mismatch_interrupts for n in nodes))
        total("ni.atomicity_timeouts",
              sum(n.ni.stats.atomicity_timeouts for n in nodes))
        total("ni.input_stalls",
              sum(n.ni.stats.input_stalls for n in nodes))
        total("ni.forced_timeouts",
              sum(n.ni.stats.forced_timeouts for n in nodes))
        gauge("ni.max_input_queue",
              max((n.ni.stats.max_input_queue for n in nodes), default=0))

        # Delivery-discipline accounting: all zero under the default
        # two-case discipline, authoritative under zerocopy/damq.
        deliveries = [n.ni.discipline.stats for n in nodes]
        total("delivery.zerocopy_accepts",
              sum(d.zerocopy_accepts for d in deliveries))
        total("delivery.fault_traps",
              sum(d.fault_traps for d in deliveries))
        total("delivery.fallbacks",
              sum(d.fallbacks for d in deliveries))
        total("delivery.damq_admits",
              sum(d.damq_admits for d in deliveries))
        total("delivery.damq_evictions",
              sum(d.damq_evictions for d in deliveries))
        total("delivery.damq_share_refusals",
              sum(d.damq_share_refusals for d in deliveries))
        gauge("delivery.pinned_pages_peak",
              max((d.pinned_pages_peak for d in deliveries), default=0))
        gauge("delivery.damq_peak_occupancy",
              max((d.damq_peak_occupancy for d in deliveries), default=0))

        kernel_fields = (
            "mismatch_services", "messages_inserted", "insert_cycles",
            "vmalloc_inserts", "dropped_unknown_gid", "revocations",
            "watchdog_fires", "page_faults", "page_outs",
            "context_switches", "kernel_messages",
        )
        for field in kernel_fields:
            total(f"kernel.{field}",
                  sum(getattr(n.kernel.stats, field) for n in nodes))

        buffers = [state.buffer for job in machine.jobs
                   for state in job.node_states.values()]
        for field in ("inserted", "consumed", "pages_allocated",
                      "pages_released"):
            total(f"buffering.{field}",
                  sum(getattr(b.stats, field) for b in buffers))
        gauge("buffering.max_pages",
              max((b.stats.max_pages for b in buffers), default=0))
        gauge("buffering.max_queued_messages",
              max((b.stats.max_queued_messages for b in buffers),
                  default=0))

        ov = machine.overflow.stats
        total("overflow.advisories", ov.advisories)
        total("overflow.suspensions", ov.suspensions)
        total("overflow.exhaustions", ov.exhaustion_events)

        fast = sum(job.two_case.fast_messages for job in machine.jobs)
        buffered = sum(job.two_case.buffered_messages
                       for job in machine.jobs)
        total("two_case.fast_messages", fast)
        total("two_case.buffered_messages", buffered)
        total("two_case.transitions_to_fast",
              sum(job.two_case.transitions_to_fast
                  for job in machine.jobs))
        for reason in TransitionReason:
            total(f"two_case.enter.{reason.value}",
                  sum(job.two_case.transitions_to_buffered.get(reason, 0)
                      for job in machine.jobs))
        gauge("two_case.buffered_fraction",
              buffered / (fast + buffered) if fast + buffered else 0.0)

        transports = getattr(machine, "transports", ())
        total("transport.sends", sum(t.sends for t in transports))
        total("transport.retransmissions",
              sum(t.retransmissions for t in transports))
        total("transport.acks_sent",
              sum(t.acks_sent for t in transports))
        total("transport.duplicates_suppressed",
              sum(t.duplicates_suppressed for t in transports))
        total("transport.gave_up",
              sum(len(t.gave_up) for t in transports))

        # Mailbox services: zeros on machines without one, so the
        # counters still read as wired (the workload not running is an
        # authoritative zero, unlike a harvest that forgot them).
        mailboxes = getattr(machine, "mailboxes", ())
        mb = [service.stats for service in mailboxes]
        for field in ("submitted", "absorbed", "enqueued", "retrieved",
                      "delivered", "overflow_drops",
                      "duplicates_suppressed", "client_duplicates",
                      "reconnects", "replays", "crashes", "crash_losses",
                      "flows_created", "flows_evicted",
                      "dedup_evictions"):
            total(f"mailbox.{field}", sum(getattr(s, field) for s in mb))
        gauge("mailbox.occupancy_peak",
              max((s.occupancy_peak for s in mb), default=0))
        gauge("mailbox.active_flows_peak",
              max((s.active_flows_peak for s in mb), default=0))
        if mb:
            counts = [0] * len(self.h_retrieval_latency.counts)
            for s in mb:
                for i, c in enumerate(s.latency_counts):
                    counts[i] += c
            self.h_retrieval_latency.load(
                counts, sum(s.latency_total for s in mb))

        # Shard-execution counters: populated by the shard coordinator
        # on a machine it built (the serial-fallback path), None on
        # ordinary single-process runs — the same authoritative-zero
        # contract as the mailbox block above. (A certified sharded run
        # has no single machine for an Observatory to attach to, so an
        # observed machine is by construction single-process.)
        shard = getattr(machine, "shard_stats", None)
        total("shard.epochs", shard.epochs if shard else 0)
        total("shard.cross_shard_messages",
              shard.cross_shard_messages if shard else 0)
        total("shard.barrier_stalls",
              shard.barrier_stalls if shard else 0)
        total("shard.serial_fallbacks",
              shard.serial_fallbacks if shard else 0)
        total("shard.bytes_exchanged",
              shard.bytes_exchanged if shard else 0)
        total("shard.empty_epochs_coalesced",
              shard.empty_epochs_coalesced if shard else 0)
        # Wall-clock, not simulated time: nondeterministic by nature,
        # which is why it lives here and never in cacheable extras.
        gauge("shard.encode_seconds",
              shard.encode_seconds if shard else 0.0)

        if self.sampler is not None and not self._finalized:
            self.sampler.final_sample()
        self._finalized = True
        return reg

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def payload(self) -> Dict[str, Any]:
        """The cache-safe JSON view (metrics + snapshots + events)."""
        out: Dict[str, Any] = {
            "metrics": self.registry.snapshot(),
            "events": list(self.events),
            "events_dropped": self.events_dropped,
        }
        if self.sampler is not None:
            out["interval"] = self.sampler.interval
            out["snapshots"] = list(self.sampler.samples)
            out["snapshots_truncated"] = self.sampler.truncated
        return out


__all__ = [
    "Observatory", "MetricRegistry", "Counter", "Gauge", "Histogram",
    "DuplicateMetric", "TimelineSampler", "take_sample", "EngineProfiler",
    "render_obs_report", "write_jsonl", "write_validation_jsonl",
    "sparkline",
    "DEFAULT_SAMPLE_INTERVAL",
]
