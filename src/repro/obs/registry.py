"""The typed metric registry: counters, gauges and histograms.

Every metric is declared up front with a dotted name whose first
component is the owning subsystem (``engine.``, ``fabric.``, ``ni.``,
``kernel.``, ``buffering.``, ``overflow.``, ``two_case.``,
``transport.``). Declaration-then-update keeps the registry a closed
taxonomy: :meth:`MetricRegistry.unwired` lists every metric that was
declared but never updated, which is how the test suite proves no
counter silently rots (the way ``RunMetrics.retries`` once did).

Determinism contract: metric values derive only from simulation state
(counts, simulated cycles), never from wall-clock time, and histograms
use *fixed bucket edges* declared at construction. A snapshot is a flat
``name -> value`` dict of JSON scalars (histograms expand to a dict of
int lists), so it round-trips through ``json`` — and therefore through
the persistent result cache — bit-identically.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]


class Counter:
    """A monotonically meaningful count (ints only)."""

    __slots__ = ("name", "help", "value", "touched")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0
        self.touched = False

    def inc(self, amount: int = 1) -> None:
        self.value += amount
        self.touched = True

    def set_total(self, value: int) -> None:
        """Overwrite with an authoritative total (end-of-run harvest)."""
        self.value = int(value)
        self.touched = True

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A point-in-time value (int or float)."""

    __slots__ = ("name", "help", "value", "touched")

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: Number = 0
        self.touched = False

    def set(self, value: Number) -> None:
        self.value = value
        self.touched = True

    def snapshot(self) -> Number:
        return self.value


class Histogram:
    """Fixed-edge histogram over integer observations.

    ``edges`` are inclusive upper bounds; an observation lands in the
    first bucket whose edge is >= the value, or in the overflow bucket
    past the last edge. Edges are fixed at declaration so two runs of
    the same spec produce identical bucket vectors.
    """

    __slots__ = ("name", "help", "edges", "counts", "count", "total",
                 "touched")

    kind = "histogram"

    def __init__(self, name: str, edges: Sequence[int],
                 help: str = "") -> None:
        if not edges:
            raise ValueError(f"histogram {name} needs at least one edge")
        ordered = tuple(edges)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(
                f"histogram {name} edges must be strictly increasing: "
                f"{edges!r}"
            )
        self.name = name
        self.help = help
        self.edges = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.count = 0
        self.total = 0
        self.touched = False

    def observe(self, value: Number) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value
        self.touched = True

    def load(self, counts: Sequence[int], total: Number) -> None:
        """Overwrite with authoritative pre-bucketed counts (end-of-run
        harvest from a subsystem that kept its own fixed-edge buckets).
        The bucket vector must match this histogram's edge layout."""
        if len(counts) != len(self.counts):
            raise ValueError(
                f"histogram {self.name} expects {len(self.counts)} "
                f"buckets, got {len(counts)}"
            )
        self.counts = [int(c) for c in counts]
        self.count = sum(self.counts)
        self.total = total
        self.touched = True

    def snapshot(self) -> Dict[str, Any]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
        }


Metric = Union[Counter, Gauge, Histogram]


class DuplicateMetric(ValueError):
    """The same metric name was declared twice."""


class MetricRegistry:
    """A flat, closed namespace of declared metrics."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # -- declaration ----------------------------------------------------
    def _register(self, metric: Metric) -> Metric:
        if metric.name in self._metrics:
            raise DuplicateMetric(
                f"metric {metric.name!r} already declared"
            )
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter(name, help))  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge(name, help))  # type: ignore[return-value]

    def histogram(self, name: str, edges: Sequence[int],
                  help: str = "") -> Histogram:
        return self._register(Histogram(name, edges, help))  # type: ignore[return-value]

    # -- queries --------------------------------------------------------
    def get(self, name: str) -> Metric:
        return self._metrics[name]

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def metrics(self) -> Iterable[Metric]:
        for name in self.names():
            yield self._metrics[name]

    def unwired(self, kinds: Optional[Tuple[str, ...]] = None) -> List[str]:
        """Names of metrics declared but never updated.

        ``kinds`` restricts the check (e.g. ``("counter", "gauge")`` —
        histograms legitimately stay empty on runs without traffic of
        their kind).
        """
        return [
            metric.name for metric in self.metrics()
            if not metric.touched
            and (kinds is None or metric.kind in kinds)
        ]

    # -- export ---------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """``name -> value`` in sorted-name order, JSON scalars only."""
        return {name: self._metrics[name].snapshot()
                for name in self.names()}


__all__ = ["Counter", "Gauge", "Histogram", "Metric", "MetricRegistry",
           "DuplicateMetric"]
