"""Exporters for observability payloads: JSONL files and CLI text.

``write_jsonl`` streams one payload as line-delimited JSON — a ``meta``
line, one ``metric`` line per registry entry, one ``snapshot`` line per
timeline sample and one ``event`` line per recorded event — the format
downstream tooling (pandas, jq) ingests without a custom parser.

``render_obs_report`` is the ``repro stats`` renderer: per-subsystem
metric tables plus unicode sparklines over the timeline snapshots.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.report import render_table

_BLOCKS = "▁▂▃▄▅▆▇█"

#: Snapshot series plotted by ``repro stats``, in display order.
_SERIES = (
    ("buffer_pages", "buffer pages (all jobs)"),
    ("queued_messages", "buffered messages"),
    ("ni_queue", "NI input-queue occupancy"),
    ("net_blocked", "messages blocked in network"),
    ("timers_armed", "atomicity timers armed"),
    ("suspended_jobs", "suspended jobs"),
)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render ``values`` as a fixed-height unicode sparkline.

    Series longer than ``width`` are downsampled by per-bucket maximum
    (peaks matter more than means for occupancy series).
    """
    values = list(values)
    if not values:
        return ""
    if len(values) > width:
        bucket = len(values) / width
        values = [
            max(values[int(i * bucket):max(int((i + 1) * bucket),
                                           int(i * bucket) + 1)])
            for i in range(width)
        ]
    lo = min(values)
    hi = max(values)
    if hi == lo:
        return _BLOCKS[0] * len(values)
    span = hi - lo
    return "".join(
        _BLOCKS[int((value - lo) * (len(_BLOCKS) - 1) / span)]
        for value in values
    )


def _format_value(value: Any) -> str:
    if isinstance(value, dict):  # histogram
        if not value.get("count"):
            return "n=0"
        edges = value["edges"]
        counts = value["counts"]
        labels = [f"<={edge}" for edge in edges] + [f">{edges[-1]}"]
        buckets = " ".join(
            f"{label}:{count}"
            for label, count in zip(labels, counts) if count
        )
        return f"n={value['count']} total={value['total']}  {buckets}"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_obs_report(title: str, payload: Dict[str, Any]) -> str:
    """Per-subsystem tables + timeline sparklines for one payload."""
    metrics: Dict[str, Any] = payload.get("metrics", {})
    groups: Dict[str, List[List[str]]] = {}
    for name in sorted(metrics):
        group, _, rest = name.partition(".")
        groups.setdefault(group, []).append(
            [rest or name, _format_value(metrics[name])]
        )
    sections = [f"== {title} =="]
    for group in sorted(groups):
        sections.append(render_table(f"{group}", ["metric", "value"],
                                     groups[group]))
    snapshots: List[Dict[str, Any]] = payload.get("snapshots", [])
    if snapshots:
        rows = []
        for key, label in _SERIES:
            series = [snap.get(key, 0) for snap in snapshots]
            rows.append([label, sparkline(series), min(series),
                         max(series), series[-1]])
        interval = payload.get("interval")
        span = (f"{snapshots[0]['t']}..{snapshots[-1]['t']} cy, "
                f"{len(snapshots)} samples"
                + (f" every {interval} cy" if interval else ""))
        sections.append(render_table(
            f"timeline ({span})",
            ["series", "timeline", "min", "max", "last"], rows,
        ))
        if payload.get("snapshots_truncated"):
            sections.append("(timeline truncated at the sample limit)")
    events: List[Dict[str, Any]] = payload.get("events", [])
    if events:
        by_kind: Dict[str, int] = {}
        for event in events:
            by_kind[event.get("kind", "?")] = \
                by_kind.get(event.get("kind", "?"), 0) + 1
        sections.append(render_table(
            "events", ["kind", "count"],
            [[kind, by_kind[kind]] for kind in sorted(by_kind)],
        ))
        dropped = payload.get("events_dropped", 0)
        if dropped:
            sections.append(f"({dropped} events dropped past the limit)")
    return "\n\n".join(sections)


def write_jsonl(path, payload: Dict[str, Any],
                spec: Optional[str] = None) -> int:
    """Write one payload as JSONL; returns the number of lines."""
    lines = 0
    with open(path, "w", encoding="utf-8") as fh:
        meta = {
            "type": "meta",
            "interval": payload.get("interval"),
            "snapshots": len(payload.get("snapshots", [])),
            "events_dropped": payload.get("events_dropped", 0),
        }
        if spec is not None:
            meta["spec"] = spec
        fh.write(json.dumps(meta, sort_keys=True) + "\n")
        lines += 1
        for name, value in payload.get("metrics", {}).items():
            fh.write(json.dumps({"type": "metric", "name": name,
                                 "value": value}, sort_keys=True) + "\n")
            lines += 1
        for snap in payload.get("snapshots", []):
            fh.write(json.dumps({"type": "snapshot", **snap},
                                sort_keys=True) + "\n")
            lines += 1
        for event in payload.get("events", []):
            fh.write(json.dumps({"type": "event", **event},
                                sort_keys=True) + "\n")
            lines += 1
    return lines


def write_validation_jsonl(path, results_by_artifact: Dict[str, list],
                           provenance: Optional[Dict[str, Any]] = None,
                           ) -> int:
    """Export validation check results in the same JSONL shape.

    One ``meta`` line (overall verdict + golden provenance), then one
    ``check`` line per quantity — so drift history ingests with the
    same tooling as the observability exports.
    """
    lines = 0
    total = sum(len(results) for results in results_by_artifact.values())
    drifted = sum(
        1 for results in results_by_artifact.values()
        for result in results if not result.ok
    )
    with open(path, "w", encoding="utf-8") as fh:
        meta: Dict[str, Any] = {
            "type": "meta", "checks": total, "drifted": drifted,
            "ok": drifted == 0,
        }
        if provenance is not None:
            meta["provenance"] = provenance
        fh.write(json.dumps(meta, sort_keys=True) + "\n")
        lines += 1
        for artifact_id in sorted(results_by_artifact):
            for result in results_by_artifact[artifact_id]:
                record = {"type": "check", "artifact": artifact_id}
                record.update(result.as_dict())
                fh.write(json.dumps(record, sort_keys=True) + "\n")
                lines += 1
    return lines


__all__ = ["render_obs_report", "write_jsonl", "write_validation_jsonl",
           "sparkline"]
