"""User-level atomicity: masks and helpers for the UDM atomicity model.

The UDM model gives user code an explicit, *virtualized* interrupt
disable (Section 3, "Atomicity Model"): ``beginatom`` starts an atomic
section with respect to message-available interrupts; ``endatom`` ends
it. In the fast case these manipulate the NI's UAC register directly; in
exceptional cases the OS revokes the physical disable and preserves the
*illusion* of atomicity by buffering messages (Section 4.1, "Revocable
Interrupt Disable").

This module holds the user-facing mask constants and small composition
helpers. The enforcement machinery lives in the NI model
(:mod:`repro.ni`) and the kernel (:mod:`repro.glaze.kernel`).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Generator

from repro.ni.uac import INTERRUPT_DISABLE, TIMER_FORCE, USER_MASK

__all__ = [
    "INTERRUPT_DISABLE",
    "TIMER_FORCE",
    "USER_MASK",
    "TimeoutPolicy",
    "atomically",
]


class TimeoutPolicy(enum.Enum):
    """What the kernel does when the atomicity timer expires.

    * ``REVOKE`` — the paper's FUGU policy: switch from physical to
      virtual atomicity (buffer messages, preserve the atomic-section
      illusion, drain after endatom). "The FUGU hardware includes an
      identical timer but uses it only to let the operating system
      clear the network."
    * ``WATCHDOG`` — the Polling Watchdog policy [Maquelin et al.,
      ISCA 1996] the paper notes "could be implemented in the FUGU
      system": if polling proves sluggish, the pending message's
      interrupt fires *despite* the user's interrupt-disable. The
      programming model becomes interrupt-based — application code may
      receive an interrupt at any point and cannot rely on the
      atomicity implicit in a polling model.
    """

    REVOKE = "revoke"
    WATCHDOG = "watchdog"


def atomically(runtime: Any, body: Callable[[], Generator],
               mask: int = INTERRUPT_DISABLE) -> Generator:
    """Run ``body()`` inside an atomic section.

    A structured wrapper over ``beginatom``/``endatom`` guaranteeing the
    section is exited even if the body raises. Usage::

        result = yield from atomically(rt, lambda: do_work(rt))
    """
    yield from runtime.beginatom(mask)
    try:
        result = yield from body()
    finally:
        yield from runtime.endatom(mask)
    return result
