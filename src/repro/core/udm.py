"""The UDM runtime: the public messaging API applications program against.

One :class:`UdmRuntime` exists per (job, node). It implements the
Section 3 model — ``inject``/``injectc``, ``extract`` (split into window
reads plus ``dispose``, as in the hardware), ``peek``, the
message-available flag, and ``beginatom``/``endatom`` — and keeps the
two delivery cases *transparent*: the same application code runs
unchanged whether messages come from the NI hardware or from the
software buffer (Section 4.3).

All blocking operations are generator functions used with ``yield
from`` inside application coroutines; plain (non-generator) methods are
side-effect-free register reads.

Message handlers are generator functions ``handler(rt, msg)``; each
handler **must** free its message with ``yield from
rt.dispose_current()`` before returning (the UDM discipline; violations
surface as the hardware's dispose-failure trap).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional, Tuple

from repro.core.two_case import DeliveryMode
from repro.machine.processor import Compute, Frame
from repro.network.message import Message
from repro.sim.events import Event
from repro.ni.traps import Trap, TrapSignal
from repro.ni.uac import INTERRUPT_DISABLE

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.glaze.jobs import Job, JobNodeState
    from repro.machine.machine import Machine
    from repro.machine.node import Node


class UdmRuntime:
    """Per-node user runtime for one job."""

    def __init__(self, machine: "Machine", job: "Job", node: "Node") -> None:
        self.machine = machine
        self.engine = machine.engine
        self.job = job
        self.node = node
        self.ni = node.ni
        self.kernel = node.kernel
        self.costs = machine.costs
        self.state: "JobNodeState" = job.node_states[node.node_id]
        self.node_index = node.node_id
        self.num_nodes = machine.config.num_nodes
        # Handler bookkeeping.
        self._dispose_done = True
        self.sends = 0
        self.receives = 0

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def inject(self, dst: int, handler: Any,
               payload: Tuple[Any, ...] = ()) -> Generator:
        """Blocking inject: describe, wait for network space, launch.

        The space check repeats after the describe cycles because
        another sender (an upcall on this node, or a remote node) can
        claim the last slot toward ``dst`` meanwhile — the hardware
        equivalent is the store into the output buffer blocking.
        """
        payload = tuple(payload)
        fabric = self.machine.fabric
        while True:
            while not fabric.has_credit(dst):
                yield fabric.credit_event(dst)
            yield Compute(self.costs.send_cost(len(payload)))
            if fabric.has_credit(dst):
                break
        self._launch(dst, handler, payload)

    def injectc(self, dst: int, handler: Any,
                payload: Tuple[Any, ...] = ()) -> Generator:
        """Conditional (non-blocking) inject; returns False if the
        network cannot accept the message right now."""
        payload = tuple(payload)
        if not self.machine.fabric.has_credit(dst):
            yield Compute(1)  # the space-available register read
            return False
        yield Compute(self.costs.send_cost(len(payload)))
        self._launch(dst, handler, payload)
        return True

    def bulk_inject(self, dst: int, handler: Any,
                    payload: Tuple[Any, ...]) -> Generator:
        """Send a bulk (user-level DMA) transfer.

        For payloads beyond the 16-word direct-message limit: the
        processor pays only the descriptor setup; the DMA engine
        serializes the data out of memory (the inject blocks until the
        source-side DMA completes, modelling the engine's occupancy),
        and the receiver's handler finds the whole payload in one
        message without per-word processor cost.
        """
        payload = tuple(payload)
        fabric = self.machine.fabric
        yield Compute(self.costs.bulk.setup)
        while True:
            while not fabric.has_credit(dst):
                yield fabric.credit_event(dst)
            if fabric.has_credit(dst):
                break
        # Source-side DMA: the engine reads the payload from memory.
        done = Event(f"bulk-dma@{self.node_index}")
        self.node.dma.transfer(len(payload), on_done=done.trigger)
        if not done.triggered:
            yield done
        self.ni.launch_bulk(dst, handler, payload, privileged=False)
        self.sends += 1
        self.job.stats.messages_sent += 1

    def _launch(self, dst: int, handler: Any,
                payload: Tuple[Any, ...]) -> None:
        self.ni.describe(dst, handler, payload)
        self.ni.launch(privileged=False)
        self.sends += 1
        self.job.stats.messages_sent += 1

    def _trace_handled(self, message: Optional[Message],
                       detail: str) -> None:
        tracer = self.machine.tracer
        if tracer is not None and message is not None:
            from repro.analysis.trace import TraceEvent

            tracer.record(self.engine.now, TraceEvent.HANDLED,
                          message.msg_id, self.node_index, detail)

    # ------------------------------------------------------------------
    # Receiving: flag, peek, window, dispose
    # ------------------------------------------------------------------
    def message_available(self) -> bool:
        """The (virtualized) message-available flag."""
        if self.state.mode is DeliveryMode.BUFFERED:
            return not self.state.buffer.empty
        return self.ni.message_available

    def peek(self) -> Optional[Message]:
        """Examine the next message without freeing it."""
        if self.state.mode is DeliveryMode.BUFFERED:
            return self.state.buffer.head
        return self.ni.peek()

    def current_message(self) -> Optional[Message]:
        """The message in the (virtualized) input window."""
        return self.peek()

    def dispose_current(self) -> Generator:
        """Free the message in the input window (the dispose half of
        ``extract``). Transparent across delivery modes."""
        self._dispose_done = True
        self.receives += 1
        try:
            message = self.ni.dispose(privileged=False)
            self.job.two_case.fast_messages += 1
            self._trace_handled(message, "fast path")
            yield Compute(1)
        except TrapSignal as signal:
            if signal.trap is Trap.DISPOSE_EXTEND:
                yield from self._emulated_dispose()
            else:
                yield from self.kernel.service_trap(signal, self.state)

    def _emulated_dispose(self) -> Generator:
        """Buffered-mode dispose: pop the software buffer.

        Charges the Table 5 extraction cost minus the handler-body
        cycles the application's handler charges itself, so a buffered
        null message costs insert(180) + extract(52) = 232 total.
        """
        buffer = self.state.buffer
        if buffer.empty:
            raise TrapSignal(Trap.BAD_DISPOSE,
                             {"reason": "buffered dispose, empty buffer"})
        message = buffer.pop()
        self.ni.set_kernel_uac(dispose_pending=False)
        # The Table 5 extraction cost covers dispatch-from-DRAM plus the
        # dispose emulation; the handler body charges its own cycles
        # (null handler: 4 body + 1 dispose = 5), so subtract the body
        # and keep the dispose cycle: 47 + 1 + 4 = 52 for a null message.
        # Bulk payloads were deposited by DMA: no per-word charge.
        if message.bulk:
            cost = (self.costs.buffered.extract_cost(0)
                    + self.costs.bulk.completion)
        else:
            cost = self.costs.buffered.extract_cost(message.payload_words)
        cost = max(1, cost - self.costs.fast.null_handler + 1)
        self._trace_handled(message, "buffered path")
        yield Compute(cost)

    def extract(self) -> Generator:
        """Atomic read-and-free of the next message (Section 3's
        ``extract``). It is an error when no message is available."""
        message = self.peek()
        if message is None:
            raise TrapSignal(Trap.BAD_DISPOSE,
                             {"reason": "extract with no message"})
        yield from self.dispose_current()
        return message

    # ------------------------------------------------------------------
    # Atomicity
    # ------------------------------------------------------------------
    def beginatom(self, mask: int = INTERRUPT_DISABLE) -> Generator:
        yield Compute(1)
        self.ni.beginatom(mask)

    def endatom(self, mask: int = INTERRUPT_DISABLE) -> Generator:
        yield Compute(1)
        try:
            self.ni.endatom(mask)
        except TrapSignal as signal:
            yield from self.kernel.service_trap(signal, self.state,
                                                endatom_mask=mask)

    @property
    def in_atomic_section(self) -> bool:
        return self.ni.uac.interrupt_disable

    # ------------------------------------------------------------------
    # Polling reception
    # ------------------------------------------------------------------
    def poll_extract(self) -> Generator:
        """One polling-loop iteration: check the flag, and if a message
        is present, read and free it. Returns the message or None.

        Callers should be inside an atomic section, as polling loops
        are in the UDM discipline. Costs follow Table 4's polling rows
        in fast mode and Table 5's extraction in buffered mode.
        """
        yield Compute(self.costs.fast.poll_check)
        message = self.peek()
        if message is None:
            yield from self.maybe_exit_buffered()
            return None
        if self.state.mode is DeliveryMode.BUFFERED:
            self._dispose_done = True
            self.receives += 1
            yield from self._emulated_dispose()
            yield from self.maybe_exit_buffered()
        else:
            per_word = (self.costs.bulk.completion if message.bulk
                        else self.costs.receive_handler_extra(
                            message.payload_words))
            yield Compute(self.costs.fast.poll_dispatch + per_word)
            yield from self.dispose_current()
        return message

    def wait_message(self, poll_interval: int = 10) -> Generator:
        """Poll until a message is available; returns the peeked message.

        The caller still extracts it. Must hold atomicity, or the
        message will be stolen by the interrupt path.
        """
        while True:
            yield Compute(self.costs.fast.poll_check)
            message = self.peek()
            if message is not None:
                return message
            yield Compute(poll_interval)

    def _after_buffered_receive(self) -> None:
        """Hook: a polled buffered receive may have drained the buffer;
        the poller exits buffered mode through the kernel on its next
        poll (handled in drain/poll paths by the empty check)."""
        # Exit handled lazily by poll paths via maybe_exit_buffered.

    def maybe_exit_buffered(self) -> Generator:
        """Leave buffered mode if this job drained its buffer.

        Polling applications call this (it is folded into
        ``poll_extract`` callers' loops via the runtime in
        :meth:`drain_loop` for interrupt-driven ones).
        """
        if (
            self.state.mode is DeliveryMode.BUFFERED
            and self.state.buffer.empty
            and self.state.installed
        ):
            yield from self.kernel.exit_buffered_syscall(self.state)

    # ------------------------------------------------------------------
    # Interrupt (upcall) reception
    # ------------------------------------------------------------------
    def raise_upcall(self) -> None:
        """NI hook: a matching message wants a user-level interrupt."""
        self.node.processor.raise_user_upcall(self._upcall_factory)

    def _upcall_factory(self) -> Optional[Frame]:
        ni = self.ni
        if (
            not self.state.installed
            or self.state.mode is not DeliveryMode.FAST
            or not ni.message_available
            or ni.uac.interrupt_disable
        ):
            # Condition evaporated between raise and delivery.
            ni.upcall_complete()
            return None
        return Frame(
            self._upcall_gen(),
            name=f"upcall:{self.job.name}@{self.node.node_id}",
            kernel=False,
            job_gid=self.job.gid,
        )

    def _upcall_gen(self) -> Generator:
        """The message-available user interrupt sequence (Figure 2)."""
        ni = self.ni
        costs = self.costs
        # The OS stub marks the pending dispose and enters the handler's
        # atomic section before user code runs.
        start = self.engine.now
        ni.set_kernel_uac(dispose_pending=True)
        ni.beginatom(INTERRUPT_DISABLE)
        yield Compute(costs.receive_entry_cost())
        injector = self.machine.fault_injector
        if injector is not None and \
                injector.handler_page_fault(self.node_index):
            # Synthetic page-fault storm: the handler faults before it
            # runs; the kernel flips this job to buffered mode and the
            # message is diverted (one of the Section 4.3 triggers).
            yield from self.page_fault()
        message = ni.head
        handled = False
        if message is not None and ni.message_available:
            if message.bulk:
                # DMA deposited the payload: fixed completion handling.
                yield Compute(costs.bulk.completion)
            else:
                yield Compute(
                    costs.receive_handler_extra(message.payload_words))
            self._dispose_done = False
            yield from message.handler(self, message)
            handled = True
        else:
            # The message was diverted (revocation) before the handler
            # started; the drain thread will run it from the buffer.
            ni.set_kernel_uac(dispose_pending=False)
            self._dispose_done = True
        yield Compute(costs.receive_exit_cost())
        # The cleanup's endatom is already costed inside receive_exit
        # (the Table 4 "upcall cleanup"/"timer cleanup" categories), so
        # execute the operation without the user-level instruction charge.
        try:
            ni.endatom(INTERRUPT_DISABLE)
        except TrapSignal as signal:
            yield from self.kernel.service_trap(
                signal, self.state, endatom_mask=INTERRUPT_DISABLE
            )
        if handled:
            # T_hand accounting covers the whole reception (entry,
            # handler body, cleanup), matching the paper's "cycles
            # spent per handler".
            self.job.stats.handler_invocations += 1
            self.job.stats.handler_cycles += self.engine.now - start
        ni.upcall_complete()

    # ------------------------------------------------------------------
    # Buffered-mode drain thread (created by the kernel)
    # ------------------------------------------------------------------
    def drain_loop(self) -> Generator:
        """The high-priority message-handling thread of buffered mode.

        Runs handlers for every buffered message in order; when the
        buffer drains it exits buffered mode and terminates. New
        messages diverted while it runs simply extend its work list.
        """
        state = self.state
        while True:
            while state.mode is DeliveryMode.BUFFERED and \
                    not state.buffer.empty:
                message = state.buffer.head
                self._dispose_done = False
                start = self.engine.now
                injector = self.machine.fault_injector
                if injector is not None and \
                        injector.handler_page_fault(self.node_index):
                    # Storm hits the drain thread too; already
                    # buffered, so this only costs the fault service.
                    yield from self.page_fault()
                yield from message.handler(self, message)
                if not self._dispose_done:
                    raise TrapSignal(Trap.DISPOSE_FAILURE,
                                     {"handler": message.handler})
                self.job.stats.handler_invocations += 1
                self.job.stats.handler_cycles += self.engine.now - start
            if state.mode is not DeliveryMode.BUFFERED:
                return
            exited = yield from self.kernel.exit_buffered_syscall(state)
            if exited:
                return
            if state.buffer.empty:
                # The exit was refused with nothing left to drain (the
                # always-buffered ablation): terminate; the kernel
                # respawns a drain thread when messages arrive.
                return

    # ------------------------------------------------------------------
    # Two-case transparency hooks (the "base register" swap)
    # ------------------------------------------------------------------
    def on_enter_buffered(self) -> None:
        """The input window now points at the software buffer."""
        # peek()/dispose_current() consult the mode on every access, so
        # the swap needs no per-runtime state; the hook exists for
        # symmetry and instrumentation.

    def on_exit_buffered(self) -> None:
        """The input window points back at the NI hardware."""

    # ------------------------------------------------------------------
    # Faults and helpers
    # ------------------------------------------------------------------
    def page_fault(self) -> Generator:
        """Simulate a page fault in the executing user code (handlers
        included) — one of the Section 4.3 buffered-mode triggers."""
        yield from self.kernel.service_trap(
            TrapSignal(Trap.PAGE_FAULT), self.state
        )

    def force_buffered_mode(self) -> Generator:
        """Explicitly enter buffered mode (experiment hook).

        Used by the Table 5 microbenchmark ("a microbenchmark that
        causes many messages to be buffered") and by fault-injection
        tests; production transitions happen through the kernel.
        """
        from repro.core.two_case import TransitionReason

        yield Compute(1)
        self.kernel.enter_buffered_mode(self.state,
                                        TransitionReason.EXPLICIT)

    def compute(self, cycles: int) -> Generator:
        """Consume processor cycles (modelled application work)."""
        yield Compute(cycles)

    def finish_main(self) -> None:
        """Mark this node's main thread complete (called by the machine
        when the application generator returns)."""
        self.job.note_node_main_finished(self.node.node_id, self.engine.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<UdmRuntime {self.job.name}@{self.node.node_id}>"
