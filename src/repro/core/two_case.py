"""Two-case delivery: modes, transition reasons and statistics.

A process is, per node, in one of two delivery modes:

* ``FAST`` — direct delivery: the application reads messages straight
  out of the network-interface hardware;
* ``BUFFERED`` — the kernel diverts all arriving messages into the
  application's virtual-memory software buffer, and the application
  (transparently) reads them from there.

Section 4.3 identifies the transitions into buffered mode — all "soft",
changing cost but never semantics:

* the scheduled application held atomicity too long
  (``ATOMICITY_TIMEOUT`` — the revocation case),
* a page fault in a handler (``PAGE_FAULT``),
* a message arrived for a process that is not scheduled
  (``GID_MISMATCH`` — includes the scheduler-quantum case: at quantum
  start a process whose buffer is non-empty begins in buffered mode,
  ``QUANTUM_START``).

The mode returns to ``FAST`` when the last buffered message has been
handled.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict


class DeliveryMode(enum.Enum):
    FAST = "fast"
    BUFFERED = "buffered"


class DeliveryArchitecture(enum.Enum):
    """Which Figure 1 interface architecture the machine models.

    * ``TWO_CASE`` — the paper's system (Figure 1c/d): direct hardware
      access in the common case, software buffering as the fallback.
    * ``MEMORY_BASED`` — the Figure 1(b) baseline: the interface
      hardware demultiplexes every message into a *pinned* per-process
      memory queue; the processor always reads messages from memory.
      Easy to protect, but it pins physical memory per process and puts
      DRAM on every message's critical path — the trade-off Section 2
      lays out against direct interfaces.
    """

    TWO_CASE = "two-case"
    MEMORY_BASED = "memory-based"


class TransitionReason(enum.Enum):
    """Why a process entered buffered mode."""

    GID_MISMATCH = "gid-mismatch"       # message arrived while descheduled
    QUANTUM_START = "quantum-start"     # scheduled with a non-empty buffer
    ATOMICITY_TIMEOUT = "atomicity-timeout"  # revocation
    PAGE_FAULT = "page-fault"           # handler faulted
    QUANTUM_EXPIRY = "quantum-expiry"   # descheduled mid-atomic-section
    EXPLICIT = "explicit"               # forced by an experiment
    # Alternative delivery disciplines (see repro.ni.delivery): these
    # reasons are legal only under their own discipline — the
    # invariant checker's legality table is keyed by delivery kind.
    ZEROCOPY_FAULT = "zerocopy-fault"   # receive ring overflowed
    QUEUE_PRESSURE = "queue-pressure"   # DAMQ occupancy-pressure evict


@dataclass
class TwoCaseStats:
    """Per-job (whole machine) two-case delivery counters."""

    fast_messages: int = 0
    buffered_messages: int = 0
    transitions_to_buffered: Dict[TransitionReason, int] = field(
        default_factory=dict
    )
    transitions_to_fast: int = 0

    @property
    def total_messages(self) -> int:
        return self.fast_messages + self.buffered_messages

    @property
    def buffered_fraction(self) -> float:
        total = self.total_messages
        if total == 0:
            return 0.0
        return self.buffered_messages / total

    def note_transition(self, reason: TransitionReason) -> None:
        count = self.transitions_to_buffered.get(reason, 0)
        self.transitions_to_buffered[reason] = count + 1

    def merge(self, other: "TwoCaseStats") -> None:
        self.fast_messages += other.fast_messages
        self.buffered_messages += other.buffered_messages
        self.transitions_to_fast += other.transitions_to_fast
        for reason, count in other.transitions_to_buffered.items():
            base = self.transitions_to_buffered.get(reason, 0)
            self.transitions_to_buffered[reason] = base + count
