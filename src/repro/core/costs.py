"""The cycle-cost model: Tables 4 and 5 of the paper.

Table 4 gives the per-category costs of the fast path for three
protection regimes:

* ``KERNEL`` — unprotected kernel-to-kernel messaging (54-cycle null
  interrupt receive);
* ``HARD`` — user-level messaging protected by the hardware revocable
  interrupt disable (87 cycles);
* ``SOFT`` — the same protection emulated in software on first-silicon
  CMMUs (115 cycles), the configuration the paper's application results
  were measured in.

Table 5 gives the buffered-path costs: 180 cycles minimum to insert a
message into the software buffer (3,162 when a fresh page must be
allocated), and 52 cycles to execute a null handler from the buffer —
232 cycles per buffered null message end to end.

All costs are data, not behaviour: the simulator charges them wherever
the corresponding code path runs, so experiments may re-parameterize
(e.g. Figure 10 artificially inflates the buffer-insert cost).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

#: Version stamp of the cycle-cost model. Bump whenever any constant in
#: this module (or cost-charging behaviour anywhere in the simulator)
#: changes: the persistent result cache (`repro.runner.cache`) keys
#: every stored run on this value, so a bump invalidates stale results.
COST_MODEL_VERSION = 1


#: How many doublings an exponential transport backoff may grow before
#: it stops increasing. Both reliable-transport delay paths (the
#: retransmission timer and the NI-autonomous credit wait) share this
#: exponent, so a non-default base delay scales both the same way.
TRANSPORT_BACKOFF_DOUBLINGS = 6

#: Absolute ceiling, in cycles, on any reliable-transport backoff
#: delay — roughly half the default 500,000-cycle scheduler timeslice,
#: so a backed-off retry always lands within the next quantum instead
#: of blowing past the atomicity window. With the default 4,000-cycle
#: retry timeout the doubling cap and this ceiling coincide
#: (4,000 << 6 = 256,000), so default configurations are unchanged.
TRANSPORT_BACKOFF_CAP = 256_000


def transport_backoff_cap(base: int) -> int:
    """The ceiling for an exponential backoff starting at ``base``.

    The single named cap both :class:`ReliableTransport` delay paths
    clamp to: ``base`` doubled :data:`TRANSPORT_BACKOFF_DOUBLINGS`
    times, never above :data:`TRANSPORT_BACKOFF_CAP`.
    """
    return min(base << TRANSPORT_BACKOFF_DOUBLINGS, TRANSPORT_BACKOFF_CAP)


class AtomicityMode(enum.Enum):
    """Which protection regime the fast path runs under (Table 4)."""

    KERNEL = "kernel"
    HARD = "hard"
    SOFT = "soft"


@dataclass(frozen=True)
class FastPathCosts:
    """Per-category fast-path costs for one atomicity mode (Table 4)."""

    # Message send
    descriptor_construction: int = 6
    launch: int = 1
    send_per_payload_word: int = 3
    # Message receive via interrupt
    interrupt_overhead: int = 6
    register_save: int = 16
    gid_check: int = 0
    timer_setup: int = 0
    virtual_buffering_overhead: int = 0
    dispatch: int = 10
    null_handler: int = 5
    upcall_cleanup: int = 0
    timer_cleanup: int = 0
    register_restore: int = 17
    receive_per_payload_word: int = 2
    # Message receive via polling
    poll_check: int = 3
    poll_dispatch: int = 5
    poll_null_handler: int = 1

    @property
    def send_total(self) -> int:
        """Null-message send cost (7 in every mode)."""
        return self.descriptor_construction + self.launch

    @property
    def receive_entry(self) -> int:
        """Interrupt receive cost up to handler start (Table 4 subtotal)."""
        return (
            self.interrupt_overhead
            + self.register_save
            + self.gid_check
            + self.timer_setup
            + self.virtual_buffering_overhead
            + self.dispatch
        )

    @property
    def receive_exit(self) -> int:
        """Interrupt receive cost after the handler returns."""
        return (
            self.upcall_cleanup + self.timer_cleanup + self.register_restore
        )

    @property
    def receive_interrupt_total(self) -> int:
        """Null-message receive-by-interrupt cost (Table 4 total)."""
        return self.receive_entry + self.null_handler + self.receive_exit

    @property
    def receive_polling_total(self) -> int:
        """Null-message receive-by-polling cost (9 cycles)."""
        return self.poll_check + self.poll_dispatch + self.poll_null_handler


#: Table 4, column by column.
_FAST_PATH = {
    AtomicityMode.KERNEL: FastPathCosts(),
    AtomicityMode.HARD: FastPathCosts(
        gid_check=10, timer_setup=1, virtual_buffering_overhead=8,
        dispatch=13, upcall_cleanup=10, timer_cleanup=1,
    ),
    AtomicityMode.SOFT: FastPathCosts(
        gid_check=10, timer_setup=13, virtual_buffering_overhead=8,
        dispatch=13, upcall_cleanup=10, timer_cleanup=17,
    ),
}


@dataclass(frozen=True)
class BufferedPathCosts:
    """Software-buffered delivery costs (Table 5)."""

    #: Minimum buffer-insert handler (kernel side, existing page).
    insert_min: int = 180
    #: Maximum insert handler: a fresh physical page is allocated.
    insert_with_vmalloc: int = 3162
    #: Execute a null handler from the buffer (user side), including one
    #: expected cache miss fetching the header from DRAM.
    extract_null: int = 52
    #: "Add roughly 4.5 cycles per argument word to the extraction cost"
    #: — DRAM access (2/word) plus amortized cache misses (10 per 4
    #: words). Expressed in tenths to stay integral.
    extract_per_word_tenths: int = 45
    #: Artificial extra insert latency (Figure 10's sweep parameter).
    insert_extra: int = 0

    @property
    def vmalloc_cost(self) -> int:
        """Marginal cost of the on-demand page allocation."""
        return self.insert_with_vmalloc - self.insert_min

    @property
    def per_message_total(self) -> int:
        """Steady-state buffered cost per null message (232 cycles)."""
        return self.insert_min + self.insert_extra + self.extract_null

    def insert_cost(self, new_page: bool) -> int:
        base = self.insert_with_vmalloc if new_page else self.insert_min
        return base + self.insert_extra

    def insert_cost_pages(self, pages: int) -> int:
        """Insert cost when ``pages`` fresh pages must be mapped (bulk
        messages may span several)."""
        return self.insert_min + self.insert_extra \
            + pages * self.vmalloc_cost

    def extract_cost(self, payload_words: int) -> int:
        return self.extract_null + (
            self.extract_per_word_tenths * payload_words
        ) // 10


@dataclass(frozen=True)
class BulkCosts:
    """User-level DMA (bulk transfer) costs.

    The paper defers bulk transfers to FUGU's separate DMA mechanism
    [Mackenzie et al., TM-503]; these model its processor-visible
    costs: descriptor setup at the sender and completion handling at
    the receiver. The data itself moves by DMA — no per-word processor
    cycles at either end (the engine's occupancy is modelled by
    :class:`~repro.ni.dma.DmaEngine`).
    """

    setup: int = 50
    completion: int = 20


@dataclass(frozen=True)
class KernelCosts:
    """Glaze kernel overheads not itemized in the paper's tables.

    These are free parameters: the paper reports only that its scheduler
    timeslice was 500,000 cycles. Values are chosen to be plausibly
    small relative to the timeslice so the Figure 7/8 results are
    dominated by skew and buffering, not by kernel constants.
    """

    #: Gang context switch (capture + install + NI reprogramming).
    context_switch: int = 1000
    #: Entering/leaving buffered mode (divert-mode writes, bookkeeping).
    mode_transition: int = 100
    #: Servicing a mismatch interrupt before any per-message work.
    mismatch_entry: int = 50
    #: Synchronous trap entry/exit (dispose-extend emulation prologue).
    trap_overhead: int = 20
    #: Page-out of one buffer page over the second network, when the
    #: frame pool is exhausted (latency to backing store).
    page_out: int = 20000
    #: Memory-based baseline: per-message hardware demultiplex into the
    #: pinned queue (queue-pointer update; the copy itself is DMA).
    hardware_demux: int = 15
    #: Memory-based baseline: how long the hardware waits before
    #: retrying delivery into a full pinned queue.
    pinned_retry_delay: int = 500
    #: Zero-copy discipline: taking the protection-fault trap that
    #: redirects a delivery off the pinned receive ring onto the
    #: buffered path (charged once per kernel drain under zerocopy;
    #: never on the default two-case paths).
    zerocopy_fault_trap: int = 300
    #: DAMQ discipline: scanning the per-source lists to pick an
    #: eviction victim under occupancy pressure (charged by the
    #: mismatch drain the eviction triggers; never under two-case).
    damq_evict_scan: int = 40


@dataclass(frozen=True)
class CostModel:
    """The full machine cost model used by runtime, kernel and apps."""

    mode: AtomicityMode = AtomicityMode.HARD
    fast: FastPathCosts = field(default=None)  # type: ignore[assignment]
    buffered: BufferedPathCosts = field(default_factory=BufferedPathCosts)
    kernel: KernelCosts = field(default_factory=KernelCosts)
    bulk: BulkCosts = field(default_factory=BulkCosts)

    def __post_init__(self) -> None:
        if self.fast is None:
            object.__setattr__(self, "fast", _FAST_PATH[self.mode])

    @staticmethod
    def for_mode(mode: AtomicityMode) -> "CostModel":
        return CostModel(mode=mode)

    def with_buffer_insert_extra(self, extra: int) -> "CostModel":
        """Figure 10: add artificial latency to the buffer handler."""
        return replace(self, buffered=replace(self.buffered,
                                              insert_extra=extra))

    # Convenience pass-throughs used throughout the runtime -------------
    def send_cost(self, payload_words: int) -> int:
        return (
            self.fast.send_total
            + self.fast.send_per_payload_word * payload_words
        )

    def receive_entry_cost(self) -> int:
        return self.fast.receive_entry

    def receive_exit_cost(self) -> int:
        return self.fast.receive_exit

    def receive_handler_extra(self, payload_words: int) -> int:
        return self.fast.receive_per_payload_word * payload_words
