"""The paper's primary contribution: the UDM model with two-case delivery.

* :mod:`repro.core.costs` — the Table 4 / Table 5 cycle-cost model.
* :mod:`repro.core.udm` — the public UDM API (inject/extract/atomicity)
  applications program against.
* :mod:`repro.core.two_case` — the per-job delivery-mode state machine
  (fast/direct vs software-buffered) and its transition reasons.
* :mod:`repro.core.atomicity` — revocable-interrupt-disable policy and
  the buffered-mode (software) emulation of atomicity.
"""

from repro.core.costs import AtomicityMode, CostModel
from repro.core.two_case import DeliveryMode, TransitionReason, TwoCaseStats
from repro.core.udm import UdmRuntime

__all__ = [
    "AtomicityMode",
    "CostModel",
    "DeliveryMode",
    "TransitionReason",
    "TwoCaseStats",
    "UdmRuntime",
]
